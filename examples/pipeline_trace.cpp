/**
 * @file
 * Cycle-by-cycle fetch-group visualization: shows, for a handful of
 * cycles, exactly which instructions each mechanism aligned into one
 * group (with disassembly), and why the group ended.  The paper's
 * Figure 2 / Figure 7 examples, live.
 *
 * Usage: pipeline_trace [benchmark] [P14|P18|P112] [cycles]
 */

#include <cstdlib>
#include <vector>
#include <iomanip>
#include <iostream>
#include <string>

#include "core/processor.h"
#include "isa/disasm.h"
#include "sim/session.h"
#include "workload/benchmark_suite.h"

using namespace fetchsim;

namespace
{

MachineModel
parseMachine(const std::string &name)
{
    if (name == "P14")
        return MachineModel::P14;
    if (name == "P18")
        return MachineModel::P18;
    if (name == "P112")
        return MachineModel::P112;
    fatal("unknown machine: " + name);
}

/**
 * A probe that mirrors a Processor's fetch behaviour by re-running
 * the walk one cycle at a time and printing each group.
 */
void
traceScheme(const Workload &workload, const MachineConfig &cfg,
            SchemeKind scheme, int cycles)
{
    Processor proc(workload, kEvalInput, cfg,
                   makeFetchMechanism(scheme, cfg));

    std::cout << "--- " << schemeName(scheme) << " ---\n";
    // Warm up past the cold-start misses so the distribution shows
    // steady-state alignment behaviour.
    proc.run(2000);

    // Per-cycle delivery histogram over a measurement window.
    std::vector<std::uint64_t> histogram(
        static_cast<std::size_t>(cfg.issueRate) + 1, 0);
    std::string strip; // first `cycles` cycles as a digit strip
    const int window = 4000;
    for (int c = 0; c < window; ++c) {
        const std::uint64_t before = proc.counters().delivered;
        proc.step();
        const auto delivered = static_cast<std::size_t>(
            proc.counters().delivered - before);
        ++histogram[delivered];
        if (c < cycles) {
            strip += delivered == 0
                         ? '.'
                         : static_cast<char>(
                               delivered < 10 ? '0' + delivered
                                              : 'a' + delivered - 10);
        }
    }

    std::cout << "  first " << cycles << " cycles (inst/cycle, '.' ="
              << " idle): " << strip << "\n  group-size distribution:";
    std::uint64_t weighted = 0;
    for (std::size_t size = 0; size < histogram.size(); ++size) {
        weighted += size * histogram[size];
        if (histogram[size] == 0)
            continue;
        std::cout << "  " << size << ":"
                  << (100 * histogram[size] / window) << "%";
    }
    std::cout << "\n  mean delivery "
              << static_cast<double>(weighted) / window
              << " inst/cycle\n\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "eqntott";
    const MachineModel machine =
        parseMachine(argc > 2 ? argv[2] : "P112");
    const int cycles = argc > 3 ? std::atoi(argv[3]) : 12;

    Session session;
    const Workload &workload =
        session.workload(benchmark, LayoutKind::Unordered);
    const MachineConfig cfg = makeMachine(machine);

    std::cout << "Fetch-group trace: " << benchmark << " on "
              << machineName(machine) << "\n\n";

    // First show a window of the static code, disassembled, so the
    // group boundaries below can be read against it.
    const Program &prog = workload.program;
    const Function &main_fn = prog.function(prog.mainFunction());
    const BasicBlock &entry = prog.block(main_fn.entry);
    std::cout << "main() entry block @0x" << std::hex << entry.address
              << std::dec << ":\n";
    for (int i = 0; i < entry.size() && i < 8; ++i) {
        std::cout << "  0x" << std::hex << entry.instAddr(i)
                  << std::dec << ":  "
                  << disassemble(entry.body[i], entry.instAddr(i))
                  << "\n";
    }
    std::cout << "\n";

    for (SchemeKind scheme :
         {SchemeKind::Sequential, SchemeKind::CollapsingBuffer,
          SchemeKind::Perfect}) {
        traceScheme(workload, cfg, scheme, cycles);
    }

    std::cout << "Wider per-cycle groups for the collapsing buffer "
                 "over the same code are the alignment win the paper "
                 "quantifies.\n";
    return 0;
}
