/**
 * @file
 * Fetch-unit design-space exploration beyond the paper's three fixed
 * machines: sweep the issue rate (with the paper's block-size and
 * resource scaling rules) and report where each alignment mechanism
 * runs out of steam -- the experiment an architect would run before
 * committing to a fetch design.
 *
 * Usage: design_space [benchmark] [insts]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/processor.h"
#include "sim/session.h"
#include "stats/table.h"
#include "workload/benchmark_suite.h"

using namespace fetchsim;

namespace
{

/** Scale a machine the way the paper scales P14 -> P18 -> P112. */
MachineConfig
scaledMachine(int issue_rate)
{
    MachineConfig cfg = makeP14();
    cfg.name = "I" + std::to_string(issue_rate);
    cfg.issueRate = issue_rate;
    // One cache block holds one maximal fetch group (round the
    // block up to a power of two of at least 4 instructions).
    std::uint64_t insts_per_block = 4;
    while (insts_per_block < static_cast<std::uint64_t>(issue_rate))
        insts_per_block *= 2;
    cfg.blockBytes = insts_per_block * kInstBytes;
    cfg.icacheBytes = 2048 * cfg.blockBytes; // constant set count
    cfg.windowSize = 8 + 2 * issue_rate;
    cfg.robSize = 2 * cfg.windowSize;
    cfg.fxuCount = (issue_rate + 1) / 2;
    cfg.fpuCount = (issue_rate + 1) / 2;
    cfg.branchCount = (issue_rate + 1) / 2;
    cfg.loadCount = (issue_rate + 1) / 2;
    cfg.storeBufferSize = 2 * issue_rate;
    cfg.specDepth = (issue_rate + 1) / 2;
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "eqntott";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 80000;

    std::cout << "Issue-rate sweep on " << benchmark
              << " (machines scaled with the paper's rules)\n\n";

    // The machines here are custom (outside the paper's three), so
    // the runs drive Processor directly; the Session still supplies
    // the prepared workload.
    Session session;
    const Workload &workload =
        session.workload(benchmark, LayoutKind::Unordered);
    const int rates[] = {2, 4, 8, 12, 16};
    const SchemeKind schemes[] = {
        SchemeKind::Sequential, SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};

    TextTable ipc_table("IPC by issue rate");
    TextTable eff_table("EIR as % of perfect, by issue rate");
    std::vector<std::string> header = {"scheme"};
    for (int rate : rates)
        header.push_back(std::to_string(rate) + "-issue");
    ipc_table.setHeader(header);
    eff_table.setHeader(header);

    // Perfect EIR baseline per rate.
    std::vector<double> perfect_eir;
    for (int rate : rates) {
        MachineConfig cfg = scaledMachine(rate);
        Processor proc(workload, kEvalInput, cfg,
                       makeFetchMechanism(SchemeKind::Perfect, cfg));
        proc.run(insts);
        perfect_eir.push_back(proc.counters().eir());
    }

    for (SchemeKind scheme : schemes) {
        ipc_table.startRow();
        eff_table.startRow();
        ipc_table.addCell(std::string(schemeName(scheme)));
        eff_table.addCell(std::string(schemeName(scheme)));
        for (std::size_t r = 0; r < std::size(rates); ++r) {
            MachineConfig cfg = scaledMachine(rates[r]);
            Processor proc(workload, kEvalInput, cfg,
                           makeFetchMechanism(scheme, cfg));
            proc.run(insts);
            ipc_table.addCell(proc.counters().ipc(), 3);
            eff_table.addPercent(
                perfect_eir[r] == 0.0
                    ? 0.0
                    : 100.0 * proc.counters().eir() / perfect_eir[r],
                1);
        }
    }

    ipc_table.print(std::cout);
    std::cout << "\n";
    eff_table.print(std::cout);
    std::cout << "\nThe paper's scaling argument, extended: simple "
                 "schemes decay steadily as width grows, while the "
                 "collapsing buffer holds its efficiency -- the gap "
                 "is the price of not aligning across branches.\n";
    return 0;
}
