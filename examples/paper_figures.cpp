/**
 * @file
 * Literal reproduction of the paper's worked examples: Figure 2
 * (sequential fetching the sequence 1,2,5,8) and Figure 7 (the
 * collapsing buffer on the same sequence).
 *
 * The paper's fragment: a cache block holds instructions 1..4 and
 * the next block 5..8.  Instruction 2 is a taken branch to 5, and 5
 * is a taken branch to 8 (both predicted correctly by the BTB).  The
 * desired dynamic sequence is 1,2,5,8:
 *
 *   - sequential masks from the fetch address and stops at the first
 *     predicted-taken branch: it aligns only "1 2";
 *   - banked sequential crosses the inter-block branch 2->5 but
 *     stops at the intra-block branch 5->8: "1 2 5";
 *   - the collapsing buffer also collapses the 5->8 gap: "1 2 5 8",
 *     exactly Figure 7's picture.
 */

#include <iostream>

#include "fetch/walker.h"
#include "stats/table.h"

using namespace fetchsim;

namespace
{

/** Build the figure's instruction stream 1,2,5,8 with real PCs. */
std::vector<DynInst>
figureStream(std::uint64_t base)
{
    auto inst = [&](int number, OpClass op, bool taken,
                    int target_number) {
        DynInst di;
        di.pc = base + static_cast<std::uint64_t>(number - 1) * 4;
        di.si.op = op;
        di.taken = taken;
        di.actualTarget =
            taken ? base + static_cast<std::uint64_t>(
                               target_number - 1) * 4
                  : 0;
        return di;
    };
    std::vector<DynInst> stream;
    stream.push_back(inst(1, OpClass::IntAlu, false, 0));
    stream.push_back(inst(2, OpClass::CondBranch, true, 5));
    stream.push_back(inst(5, OpClass::CondBranch, true, 8));
    stream.push_back(inst(8, OpClass::IntAlu, false, 0));
    std::uint64_t seq = 0;
    for (auto &di : stream)
        di.seq = seq++;
    return stream;
}

} // anonymous namespace

int
main()
{
    std::cout
        << "Paper Figures 2 and 7: fetching the sequence 1,2,5,8\n"
        << "(block 1 holds insts 1-4, block 2 holds 5-8; 2->5 is an\n"
        << "inter-block taken branch, 5->8 an intra-block one)\n\n";

    // A 4-issue machine with 16B (4-instruction) blocks -- the P14
    // geometry the figures are drawn with.
    MachineConfig cfg = makeP14();
    const std::uint64_t base = 0x10000;

    TextTable table("Instructions aligned into one fetch cycle");
    table.setHeader({"scheme", "aligned", "stopped by"});

    for (SchemeKind scheme :
         {SchemeKind::Sequential, SchemeKind::InterleavedSequential,
          SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
          SchemeKind::Perfect}) {
        // Fresh, fully warmed frontend state per scheme.
        PredictorSuite suite(cfg.btbEntries, cfg.instsPerBlock());
        ICache icache(cfg.icacheBytes, cfg.blockBytes,
                      cfg.icacheBanks);
        icache.access(base);
        icache.access(base + 16);
        suite.btb().update(base + 4, true, base + 16);  // 2 -> 5
        suite.btb().update(base + 16, true, base + 28); // 5 -> 8

        auto stream = figureStream(base);
        FetchContext ctx;
        ctx.stream = stream.data();
        ctx.streamLen = static_cast<int>(stream.size());
        ctx.predictor = &suite;
        ctx.icache = &icache;
        ctx.cfg = &cfg;
        ctx.specHeadroom = cfg.specDepth;
        ctx.windowSpace = 64;

        FetchOutcome out = runWalk(rulesFor(scheme), ctx);

        std::string aligned;
        for (int i = 0; i < out.delivered; ++i) {
            const int number = static_cast<int>(
                (stream[static_cast<std::size_t>(i)].pc - base) / 4 +
                1);
            aligned += std::to_string(number) + " ";
        }
        table.startRow();
        table.addCell(std::string(schemeName(scheme)));
        table.addCell(aligned);
        table.addCell(std::string(fetchStopName(out.stop)));
    }
    table.print(std::cout);

    std::cout << "\nFigure 2's result: sequential gets \"1 2\".  "
                 "Figure 7's: the collapsing buffer gets "
                 "\"1 2 5 8\" in a single cycle.\n";
    return 0;
}
