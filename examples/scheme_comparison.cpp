/**
 * @file
 * Per-benchmark deep-dive: run every fetch mechanism on one
 * benchmark/machine and break down *why* each scheme's fetch groups
 * ended (the stop-reason histogram), alongside IPC/EIR.
 *
 * This is the tool you reach for when asking "where does scheme X
 * lose its bandwidth on workload Y?" -- the stop histogram shows
 * whether alignment (taken-branch/intra-block/bank-conflict stops),
 * prediction (mispredicts), the cache, or the backend (window/
 * speculation) is the binding constraint.
 *
 * Usage: scheme_comparison [benchmark] [P14|P18|P112] [insts]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/plan.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/table.h"

using namespace fetchsim;

namespace
{

MachineModel
parseMachine(const std::string &name)
{
    if (name == "P14")
        return MachineModel::P14;
    if (name == "P18")
        return MachineModel::P18;
    if (name == "P112")
        return MachineModel::P112;
    fatal("unknown machine: " + name);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "espresso";
    const MachineModel machine =
        parseMachine(argc > 2 ? argv[2] : "P112");
    const std::uint64_t insts =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 120000;

    std::cout << "Fetch-scheme anatomy: " << benchmark << " on "
              << machineName(machine) << "\n\n";

    TextTable summary("Performance summary");
    summary.setHeader({"scheme", "IPC", "EIR", "groups/cycle",
                       "avg group", "mispredicts"});

    TextTable stops("Fetch-group stop reasons (% of groups)");
    std::vector<std::string> header = {"scheme"};
    for (int i = 0; i < kNumFetchStops; ++i)
        header.push_back(fetchStopName(static_cast<FetchStop>(i)));
    stops.setHeader(header);

    Session session;
    ExperimentPlan plan;
    plan.benchmark(benchmark)
        .machine(machine)
        .schemes({SchemeKind::Sequential,
                  SchemeKind::InterleavedSequential,
                  SchemeKind::BankedSequential,
                  SchemeKind::CollapsingBuffer, SchemeKind::Perfect})
        .override([insts](RunConfig &config) {
            config.maxRetired = insts;
        });
    SweepEngine engine(session);
    SweepResult sweep = engine.run(plan);

    for (const RunResult &result : sweep.runs) {
        const SchemeKind scheme = result.config.scheme;
        const RunCounters &c = result.counters;

        summary.startRow();
        summary.addCell(std::string(schemeName(scheme)));
        summary.addCell(result.ipc(), 3);
        summary.addCell(result.eir(), 3);
        summary.addCell(static_cast<double>(c.fetchGroups) /
                            static_cast<double>(c.cycles),
                        3);
        summary.addCell(c.fetchGroups == 0
                            ? 0.0
                            : static_cast<double>(c.delivered) /
                                  static_cast<double>(c.fetchGroups),
                        2);
        summary.addCell(c.mispredicts);

        std::uint64_t total_stops = 0;
        for (int i = 0; i < kNumFetchStops; ++i)
            total_stops += c.stops[i];
        stops.startRow();
        stops.addCell(std::string(schemeName(scheme)));
        for (int i = 0; i < kNumFetchStops; ++i) {
            stops.addPercent(total_stops == 0
                                 ? 0.0
                                 : 100.0 *
                                       static_cast<double>(c.stops[i]) /
                                       static_cast<double>(total_stops),
                             1);
        }
    }

    summary.print(std::cout);
    std::cout << "\n";
    stops.print(std::cout);
    std::cout
        << "\nReading the histogram: 'taken-branch' stops are the "
           "alignment failures sequential/interleaved suffer; "
           "'intra-block' is what separates banked sequential from "
           "the collapsing buffer; 'issue-limit' means the scheme "
           "filled the machine's full width.\n";
    return 0;
}
