/**
 * @file
 * Shared helpers for the unit tests: tiny hand-built workloads with
 * exactly-known control flow, plus synthetic DynInst streams for
 * driving the fetch walker directly.
 */

#ifndef FETCHSIM_TESTS_TEST_UTIL_H_
#define FETCHSIM_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "exec/dyn_inst.h"
#include "program/layout.h"
#include "workload/generator.h"

namespace fetchsim
{
namespace test
{

/** A spec for hand-built workloads (name only; no generation). */
inline WorkloadSpec
tinySpec(const char *name, std::uint64_t seed = 42)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.seed = seed;
    return spec;
}

/**
 * Straight line: main = one block of @p len IntAlu instructions plus
 * a return.  Exactly len+1 instructions per program iteration.
 */
inline Workload
straightLineWorkload(int len)
{
    Workload wl(tinySpec("straight"));
    Program &prog = wl.program;
    FuncId fn = prog.addFunction("main");
    prog.setMainFunction(fn);
    BlockId b = prog.addBlock(fn);
    prog.function(fn).entry = b;
    for (int i = 0; i < len; ++i)
        prog.block(b).body.push_back(
            makeIntAlu(static_cast<std::uint8_t>(1 + i % 8), 1, 2));
    prog.block(b).body.push_back(makeReturn());
    prog.block(b).term = TermKind::Return;
    assignAddresses(prog);
    prog.validate();
    return wl;
}

/**
 * Counted loop: preheader -> body (backward branch, trip iterations)
 * -> exit/return.  The loop behaviour has a fixed trip count; note
 * the executor applies a small input-dependent jitter, so tests that
 * need the exact trip should read it back via executed counts.
 */
inline Workload
loopWorkload(int body_len, int trip)
{
    Workload wl(tinySpec("loop"));
    Program &prog = wl.program;
    FuncId fn = prog.addFunction("main");
    prog.setMainFunction(fn);

    BlockId pre = prog.addBlock(fn);
    BlockId body = prog.addBlock(fn);
    BlockId exit = prog.addBlock(fn);
    prog.function(fn).entry = pre;

    prog.block(pre).body.push_back(makeIntAlu(1, 1, 2));
    prog.block(pre).term = TermKind::FallThrough;
    prog.block(pre).fallThrough = body;

    for (int i = 0; i < body_len; ++i)
        prog.block(body).body.push_back(
            makeIntAlu(static_cast<std::uint8_t>(2 + i % 8), 1, 2));
    prog.block(body).body.push_back(makeCondBranch(3, 4));
    prog.block(body).term = TermKind::CondBranch;
    prog.block(body).takenTarget = body;
    prog.block(body).fallThrough = exit;

    BranchBehavior beh;
    beh.kind = BehaviorKind::Loop;
    beh.trip = trip;
    prog.block(body).behavior = wl.behaviors.add(beh);

    prog.block(exit).body.push_back(makeReturn());
    prog.block(exit).term = TermKind::Return;

    assignAddresses(prog);
    prog.validate();
    return wl;
}

/**
 * Hammock: head (cond branch over clause) -> clause -> join ->
 * return.  The branch takes with probability @p taken_prob.
 * head has @p head_len plain insts before the branch; clause has
 * @p clause_len plain insts.
 */
inline Workload
hammockWorkload(int head_len, int clause_len, double taken_prob)
{
    Workload wl(tinySpec("hammock"));
    Program &prog = wl.program;
    FuncId fn = prog.addFunction("main");
    prog.setMainFunction(fn);

    BlockId head = prog.addBlock(fn);
    BlockId clause = prog.addBlock(fn);
    BlockId join = prog.addBlock(fn);
    prog.function(fn).entry = head;

    for (int i = 0; i < head_len; ++i)
        prog.block(head).body.push_back(makeIntAlu(1, 1, 2));
    prog.block(head).body.push_back(makeCondBranch(1, 2));
    prog.block(head).term = TermKind::CondBranch;
    prog.block(head).takenTarget = join;
    prog.block(head).fallThrough = clause;

    BranchBehavior beh;
    beh.kind = BehaviorKind::Bernoulli;
    beh.takenProb = taken_prob;
    prog.block(head).behavior = wl.behaviors.add(beh);

    for (int i = 0; i < clause_len; ++i)
        prog.block(clause).body.push_back(makeIntAlu(2, 1, 2));
    prog.block(clause).term = TermKind::FallThrough;
    prog.block(clause).fallThrough = join;

    prog.block(join).body.push_back(makeIntAlu(3, 1, 2));
    prog.block(join).body.push_back(makeReturn());
    prog.block(join).term = TermKind::Return;

    assignAddresses(prog);
    prog.validate();
    return wl;
}

/**
 * Call graph: main calls callee then returns; callee is a short
 * straight-line function.
 */
inline Workload
callWorkload(int callee_len)
{
    Workload wl(tinySpec("call"));
    Program &prog = wl.program;
    FuncId fmain = prog.addFunction("main");
    FuncId fcallee = prog.addFunction("callee");
    prog.setMainFunction(fmain);

    BlockId m0 = prog.addBlock(fmain);
    BlockId m1 = prog.addBlock(fmain);
    prog.function(fmain).entry = m0;
    prog.block(m0).body.push_back(makeIntAlu(1, 1, 2));
    prog.block(m0).body.push_back(makeCall());
    prog.block(m0).term = TermKind::CallFall;
    prog.block(m0).callee = fcallee;
    prog.block(m0).fallThrough = m1;
    prog.block(m1).body.push_back(makeIntAlu(2, 1, 2));
    prog.block(m1).body.push_back(makeReturn());
    prog.block(m1).term = TermKind::Return;

    BlockId c0 = prog.addBlock(fcallee);
    prog.function(fcallee).entry = c0;
    for (int i = 0; i < callee_len; ++i)
        prog.block(c0).body.push_back(makeIntAlu(3, 1, 2));
    prog.block(c0).body.push_back(makeReturn());
    prog.block(c0).term = TermKind::Return;

    assignAddresses(prog);
    prog.validate();
    return wl;
}

/**
 * Build a synthetic correct-path DynInst stream for walker tests.
 * Each element: (pc, op, taken, target).  Sequence numbers are
 * assigned in order.
 */
struct StreamSpec
{
    std::uint64_t pc;
    OpClass op = OpClass::IntAlu;
    bool taken = false;
    std::uint64_t target = 0;
};

inline std::vector<DynInst>
makeStream(const std::vector<StreamSpec> &specs)
{
    std::vector<DynInst> stream;
    std::uint64_t seq = 0;
    for (const StreamSpec &s : specs) {
        DynInst di;
        di.pc = s.pc;
        di.seq = seq++;
        di.si.op = s.op;
        if (s.op == OpClass::CondBranch) {
            di.si = makeCondBranch(1, 2);
        } else if (s.op == OpClass::Jump) {
            di.si = makeJump();
        } else if (s.op == OpClass::Call) {
            di.si = makeCall();
        } else if (s.op == OpClass::Return) {
            di.si = makeReturn();
        } else if (s.op == OpClass::IntAlu) {
            di.si = makeIntAlu(1, 1, 2);
        }
        di.taken = s.taken;
        di.actualTarget = s.target;
        stream.push_back(di);
    }
    return stream;
}

} // namespace test
} // namespace fetchsim

#endif // FETCHSIM_TESTS_TEST_UTIL_H_
