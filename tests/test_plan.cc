/**
 * @file
 * Tests for the ExperimentPlan builder: grid expansion (size, order,
 * axis semantics) and precedence (proto < axes < overrides).
 */

#include <gtest/gtest.h>

#include "sim/plan.h"

namespace fetchsim
{
namespace
{

TEST(Plan, SingleBenchmarkExpandsToOneConfig)
{
    ExperimentPlan plan;
    plan.benchmark("gcc");
    EXPECT_EQ(plan.size(), 1u);
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0].benchmark, "gcc");
    // Unset axes leave the proto defaults untouched.
    EXPECT_EQ(grid[0].machine, MachineModel::P14);
    EXPECT_EQ(grid[0].scheme, SchemeKind::Sequential);
    EXPECT_EQ(grid[0].layout, LayoutKind::Unordered);
}

TEST(Plan, GridSizeIsAxisProduct)
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "li", "sc"})
        .machines({MachineModel::P14, MachineModel::P112})
        .schemes({SchemeKind::Sequential, SchemeKind::Perfect})
        .layouts({LayoutKind::Unordered, LayoutKind::Reordered});
    EXPECT_EQ(plan.size(), 3u * 2u * 2u * 2u);
    EXPECT_EQ(plan.expand().size(), plan.size());
}

TEST(Plan, BenchmarkAxisIsInnermost)
{
    // Runs of one suite cell (fixed machine/scheme) are contiguous, so
    // suite aggregation maps onto contiguous slices of the expansion.
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "li"})
        .machines({MachineModel::P14, MachineModel::P18});
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].machine, MachineModel::P14);
    EXPECT_EQ(grid[0].benchmark, "gcc");
    EXPECT_EQ(grid[1].machine, MachineModel::P14);
    EXPECT_EQ(grid[1].benchmark, "li");
    EXPECT_EQ(grid[2].machine, MachineModel::P18);
    EXPECT_EQ(grid[2].benchmark, "gcc");
    EXPECT_EQ(grid[3].machine, MachineModel::P18);
    EXPECT_EQ(grid[3].benchmark, "li");
}

TEST(Plan, SettingAnAxisReplacesIt)
{
    ExperimentPlan plan;
    plan.benchmark("gcc")
        .machines({MachineModel::P14, MachineModel::P18})
        .machine(MachineModel::P112); // replaces, not appends
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0].machine, MachineModel::P112);
}

TEST(Plan, ProtoSuppliesDefaults)
{
    RunConfig proto;
    proto.benchmark = "eqntott";
    proto.machine = MachineModel::P112;
    proto.useRas = true;
    proto.maxRetired = 4242;

    ExperimentPlan plan;
    plan.proto(proto).schemes(
        {SchemeKind::Sequential, SchemeKind::Perfect});
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 2u);
    for (const RunConfig &config : grid) {
        EXPECT_EQ(config.benchmark, "eqntott");
        EXPECT_EQ(config.machine, MachineModel::P112);
        EXPECT_TRUE(config.useRas);
        EXPECT_EQ(config.maxRetired, 4242u);
    }
    EXPECT_EQ(grid[0].scheme, SchemeKind::Sequential);
    EXPECT_EQ(grid[1].scheme, SchemeKind::Perfect);
}

TEST(Plan, AxisBeatsProto)
{
    RunConfig proto;
    proto.benchmark = "eqntott";
    proto.machine = MachineModel::P14;

    ExperimentPlan plan;
    plan.proto(proto).machine(MachineModel::P112);
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0].machine, MachineModel::P112);
}

TEST(Plan, OverrideBeatsAxis)
{
    ExperimentPlan plan;
    plan.benchmark("gcc")
        .machines({MachineModel::P14, MachineModel::P18})
        .override([](RunConfig &config) {
            config.machine = MachineModel::P112;
        });
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 2u);
    EXPECT_EQ(grid[0].machine, MachineModel::P112);
    EXPECT_EQ(grid[1].machine, MachineModel::P112);
}

TEST(Plan, LaterOverrideWins)
{
    ExperimentPlan plan;
    plan.benchmark("gcc")
        .override(
            [](RunConfig &config) { config.specDepthOverride = 3; })
        .override(
            [](RunConfig &config) { config.specDepthOverride = 7; });
    std::vector<RunConfig> grid = plan.expand();
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0].specDepthOverride, 7);
}

TEST(Plan, BudgetAndInputApplyToEveryPoint)
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "li"}).maxRetired(999).input(2);
    for (const RunConfig &config : plan.expand()) {
        EXPECT_EQ(config.maxRetired, 999u);
        EXPECT_EQ(config.input, 2);
    }
}

TEST(Plan, ExpansionIsDeterministic)
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "li"})
        .machines({MachineModel::P14, MachineModel::P112})
        .schemes({SchemeKind::Sequential, SchemeKind::Perfect});
    std::vector<RunConfig> a = plan.expand();
    std::vector<RunConfig> b = plan.expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].benchmark, b[i].benchmark);
        EXPECT_EQ(a[i].machine, b[i].machine);
        EXPECT_EQ(a[i].scheme, b[i].scheme);
        EXPECT_EQ(a[i].layout, b[i].layout);
    }
}

TEST(PlanDeath, ExpandWithoutBenchmarkThrows)
{
    ExperimentPlan plan;
    plan.machines({MachineModel::P14});
    EXPECT_THROW(plan.expand(), SimException);
    try {
        plan.expand();
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("benchmark"),
                  std::string::npos);
    }
    // validate() reports the same violation without throwing.
    const std::vector<SimError> errors = plan.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].kind, ErrorKind::Config);
}

TEST(PlanValidate, CollectsAllViolations)
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "doom", "quake"});
    plan.input(99);
    const std::vector<SimError> errors = plan.validate();
    // Two unknown benchmarks plus one bad input id, all reported in
    // one pass.
    ASSERT_EQ(errors.size(), 3u);
    for (const SimError &error : errors)
        EXPECT_EQ(error.kind, ErrorKind::Config);
}

TEST(PlanValidate, RejectsImplAxisOnSchemesWithoutIt)
{
    // The shifter/crossbar axis only exists for the collapsing
    // buffer (registry metadata); sweeping it across other schemes
    // would silently duplicate cells.
    ExperimentPlan plan;
    plan.benchmarks({"gcc"})
        .schemes({SchemeKind::Sequential,
                  SchemeKind::CollapsingBuffer})
        .cbImpl(CollapsingBufferFetch::Impl::Shifter);
    const std::vector<SimError> errors = plan.validate();
    ASSERT_EQ(errors.size(), 1u); // only the sequential pairing
    EXPECT_EQ(errors[0].kind, ErrorKind::Config);
    EXPECT_NE(errors[0].message.find("sequential"),
              std::string::npos);
    EXPECT_THROW(plan.expand(), SimException);
}

TEST(PlanValidate, CrossbarDefaultIsAcceptedEverywhere)
{
    // Crossbar is RunConfig's default cbImpl, so every existing
    // config carries it; only a non-default impl is a violation.
    ExperimentPlan plan;
    plan.benchmarks({"gcc"})
        .schemes({SchemeKind::Sequential, SchemeKind::Perfect,
                  SchemeKind::TraceCache})
        .cbImpl(CollapsingBufferFetch::Impl::Crossbar);
    EXPECT_TRUE(plan.validate().empty());
}

TEST(PlanValidate, ReportsEveryBadSchemeImplPairing)
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc"})
        .schemes({SchemeKind::Sequential, SchemeKind::Perfect,
                  SchemeKind::TraceCache})
        .cbImpl(CollapsingBufferFetch::Impl::Shifter);
    const std::vector<SimError> errors = plan.validate();
    ASSERT_EQ(errors.size(), 3u); // one per scheme, all at once
}

} // anonymous namespace
} // namespace fetchsim
