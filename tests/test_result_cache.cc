/**
 * @file
 * ResultCache tests: single-flight admission (one owner per key,
 * waiters blocked until fulfill, abandon hands ownership over),
 * journal persistence across instances, the pass-through entry
 * budget, and metric export.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "sim/result_cache.h"
#include "stats/metrics.h"

namespace fetchsim
{
namespace
{

/** Unique scratch path per test (tests may run concurrently). */
std::string
scratchPath(const char *tag)
{
    return ::testing::TempDir() + "fetchsim_rc_" + tag + "_" +
           std::to_string(::getpid()) + ".jsonl";
}

RunCounters
countersWith(std::uint64_t cycles)
{
    RunCounters counters;
    counters.cycles = cycles;
    counters.retired = cycles * 2;
    return counters;
}

TEST(ResultCache, MissThenFulfillServesHits)
{
    ResultCache cache;
    RunCounters out;
    ASSERT_EQ(cache.acquire(7, out), ResultCache::Outcome::Miss);
    cache.fulfill(7, countersWith(123));

    ASSERT_EQ(cache.acquire(7, out), ResultCache::Outcome::Hit);
    EXPECT_EQ(out.cycles, 123u);
    EXPECT_EQ(out.retired, 246u);

    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.inserted, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, SingleFlightAdmitsExactlyOneOwner)
{
    ResultCache cache;
    constexpr int kThreads = 8;
    std::atomic<int> misses{0};
    std::atomic<int> hits{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            RunCounters out;
            if (cache.acquire(42, out) ==
                ResultCache::Outcome::Miss) {
                misses.fetch_add(1);
                // Hold ownership briefly so the waiters really wait.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                cache.fulfill(42, countersWith(999));
            } else {
                EXPECT_EQ(out.cycles, 999u);
                hits.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(misses.load(), 1);
    EXPECT_EQ(hits.load(), kThreads - 1);
}

TEST(ResultCache, AbandonHandsOwnershipToAWaiter)
{
    ResultCache cache;
    RunCounters first;
    ASSERT_EQ(cache.acquire(5, first), ResultCache::Outcome::Miss);

    std::atomic<bool> waiter_owned{false};
    std::thread waiter([&] {
        RunCounters out;
        // Blocks until the owner abandons, then becomes the new
        // owner and fulfills.
        if (cache.acquire(5, out) == ResultCache::Outcome::Miss) {
            waiter_owned.store(true);
            cache.fulfill(5, countersWith(7));
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.abandon(5);
    waiter.join();
    EXPECT_TRUE(waiter_owned.load());

    RunCounters out;
    EXPECT_EQ(cache.acquire(5, out), ResultCache::Outcome::Hit);
    EXPECT_EQ(out.cycles, 7u);
}

TEST(ResultCache, JournalPersistsAcrossInstances)
{
    const std::string path = scratchPath("persist");
    std::remove(path.c_str());
    {
        ResultCacheOptions options;
        options.journalPath = path;
        ResultCache cache(options);
        RunCounters out;
        ASSERT_EQ(cache.acquire(1, out),
                  ResultCache::Outcome::Miss);
        cache.fulfill(1, countersWith(11));
        ASSERT_EQ(cache.acquire(2, out),
                  ResultCache::Outcome::Miss);
        cache.fulfill(2, countersWith(22));
    }
    {
        ResultCacheOptions options;
        options.journalPath = path;
        ResultCache cache(options);
        const ResultCacheStats stats = cache.stats();
        EXPECT_EQ(stats.loaded, 2u);
        EXPECT_EQ(stats.entries, 2u);
        RunCounters out;
        EXPECT_EQ(cache.acquire(1, out),
                  ResultCache::Outcome::Hit);
        EXPECT_EQ(out.cycles, 11u);
        EXPECT_EQ(cache.acquire(2, out),
                  ResultCache::Outcome::Hit);
        EXPECT_EQ(out.cycles, 22u);
    }
    std::remove(path.c_str());
}

TEST(ResultCache, BudgetDegradesToPassThroughNotEviction)
{
    ResultCacheOptions options;
    options.maxEntries = 1;
    ResultCache cache(options);
    RunCounters out;
    ASSERT_EQ(cache.acquire(1, out), ResultCache::Outcome::Miss);
    cache.fulfill(1, countersWith(1));
    // At the cap: the second key's publication is dropped, the first
    // entry is NOT evicted, and the key misses again next time.
    ASSERT_EQ(cache.acquire(2, out), ResultCache::Outcome::Miss);
    cache.fulfill(2, countersWith(2));

    EXPECT_EQ(cache.acquire(1, out), ResultCache::Outcome::Hit);
    EXPECT_EQ(cache.acquire(2, out), ResultCache::Outcome::Miss);
    cache.abandon(2);

    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, BudgetCountsLoadedEntries)
{
    const std::string path = scratchPath("budget");
    std::remove(path.c_str());
    {
        ResultCacheOptions options;
        options.journalPath = path;
        ResultCache cache(options);
        RunCounters out;
        for (std::uint64_t key = 1; key <= 3; ++key) {
            ASSERT_EQ(cache.acquire(key, out),
                      ResultCache::Outcome::Miss);
            cache.fulfill(key, countersWith(key));
        }
    }
    ResultCacheOptions options;
    options.journalPath = path;
    options.maxEntries = 2;
    ResultCache cache(options);
    EXPECT_EQ(cache.stats().loaded, 2u);
    EXPECT_EQ(cache.stats().entries, 2u);
    std::remove(path.c_str());
}

TEST(ResultCache, ExportMetricsRegistersNamespace)
{
    ResultCache cache;
    RunCounters out;
    ASSERT_EQ(cache.acquire(9, out), ResultCache::Outcome::Miss);
    cache.fulfill(9, countersWith(9));
    ASSERT_EQ(cache.acquire(9, out), ResultCache::Outcome::Hit);

    MetricRegistry registry;
    cache.exportMetrics(registry);
    const std::string text = registry.formatText();
    EXPECT_NE(text.find("result_cache.hits = 1"), std::string::npos);
    EXPECT_NE(text.find("result_cache.misses = 1"),
              std::string::npos);
    EXPECT_NE(text.find("result_cache.inserted = 1"),
              std::string::npos);
    EXPECT_NE(text.find("result_cache.entries = 1"),
              std::string::npos);
}

TEST(ResultCache, UnreadableJournalDirectoryThrows)
{
    ResultCacheOptions options;
    options.journalPath = "/nonexistent-dir-xyz/cache.jsonl";
    EXPECT_THROW(ResultCache cache(options), SimException);
}

} // anonymous namespace
} // namespace fetchsim
