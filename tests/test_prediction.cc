/**
 * @file
 * Unit tests for fetch-time prediction against actual outcomes.
 */

#include <gtest/gtest.h>

#include "branch/predictor_suite.h"
#include "fetch/fetch_types.h"

namespace fetchsim
{
namespace
{

DynInst
makeDyn(std::uint64_t pc, OpClass op, bool taken,
        std::uint64_t target)
{
    DynInst di;
    di.pc = pc;
    di.si.op = op;
    di.taken = taken;
    di.actualTarget = target;
    return di;
}

TEST(Prediction, NonControlIsTransparent)
{
    Btb btb(1024, 4);
    InstPrediction pred =
        predictInst(btb, makeDyn(0x1000, OpClass::IntAlu, false, 0));
    EXPECT_FALSE(pred.control);
    EXPECT_FALSE(pred.mispredict);
    EXPECT_EQ(btb.lookups(), 0u); // no BTB query for non-control
}

TEST(Prediction, ColdCondNotTakenIsCorrect)
{
    Btb btb(1024, 4);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::CondBranch, false, 0));
    EXPECT_TRUE(pred.cond);
    EXPECT_FALSE(pred.predTaken);
    EXPECT_FALSE(pred.mispredict);
}

TEST(Prediction, ColdCondTakenMispredicts)
{
    Btb btb(1024, 4);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::CondBranch, true, 0x2000));
    EXPECT_TRUE(pred.mispredict);
}

TEST(Prediction, TrainedCondTakenPredictsCorrectly)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::CondBranch, true, 0x2000));
    EXPECT_TRUE(pred.predTaken);
    EXPECT_EQ(pred.predTarget, 0x2000u);
    EXPECT_FALSE(pred.mispredict);
}

TEST(Prediction, TrainedCondNotTakenNowMispredicts)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    btb.update(0x1000, true, 0x2000); // strongly taken
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::CondBranch, false, 0));
    EXPECT_TRUE(pred.predTaken);
    EXPECT_TRUE(pred.mispredict);
}

TEST(Prediction, StaleCondTargetMispredicts)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::CondBranch, true, 0x3000));
    EXPECT_TRUE(pred.mispredict);
}

TEST(Prediction, JumpMissIsDecodeRedirectNotMispredict)
{
    Btb btb(1024, 4);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::Jump, true, 0x2000));
    EXPECT_TRUE(pred.decodeRedirect);
    EXPECT_FALSE(pred.mispredict);
}

TEST(Prediction, JumpHitPredictsTarget)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::Jump, true, 0x2000));
    EXPECT_TRUE(pred.predTaken);
    EXPECT_FALSE(pred.decodeRedirect);
    EXPECT_FALSE(pred.mispredict);
}

TEST(Prediction, CallBehavesLikeJump)
{
    Btb btb(1024, 4);
    InstPrediction cold = predictInst(
        btb, makeDyn(0x1000, OpClass::Call, true, 0x4000));
    EXPECT_TRUE(cold.decodeRedirect);
    btb.update(0x1000, true, 0x4000);
    InstPrediction warm = predictInst(
        btb, makeDyn(0x1000, OpClass::Call, true, 0x4000));
    EXPECT_TRUE(warm.predTaken);
    EXPECT_FALSE(warm.mispredict);
}

TEST(Prediction, ReturnMissMispredicts)
{
    Btb btb(1024, 4);
    InstPrediction pred = predictInst(
        btb, makeDyn(0x1000, OpClass::Return, true, 0x5000));
    EXPECT_TRUE(pred.mispredict);
    EXPECT_FALSE(pred.decodeRedirect);
}

TEST(Prediction, ReturnPredictsLastTarget)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x5000);
    // Same call site again: correct.
    EXPECT_FALSE(predictInst(btb, makeDyn(0x1000, OpClass::Return,
                                          true, 0x5000))
                     .mispredict);
    // Different return address: wrong.
    EXPECT_TRUE(predictInst(btb, makeDyn(0x1000, OpClass::Return,
                                         true, 0x6000))
                    .mispredict);
}

TEST(SchemeNames, AreStable)
{
    EXPECT_STREQ(schemeName(SchemeKind::Sequential), "sequential");
    EXPECT_STREQ(schemeName(SchemeKind::CollapsingBuffer),
                 "collapsing-buffer");
    EXPECT_STREQ(schemeName(SchemeKind::Perfect), "perfect");
}

} // anonymous namespace
} // namespace fetchsim
