/**
 * @file
 * Unit tests for the deterministic RNG (workload/rng.h).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/rng.h"

namespace fetchsim
{
namespace
{

TEST(SplitMix64, IsDeterministic)
{
    EXPECT_EQ(splitMix64(1), splitMix64(1));
    EXPECT_NE(splitMix64(1), splitMix64(2));
}

TEST(SplitMix64, ZeroInputDoesNotYieldZero)
{
    EXPECT_NE(splitMix64(0), 0u);
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(HashCombine, Deterministic)
{
    EXPECT_EQ(hashCombine(123, 456), hashCombine(123, 456));
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedProducesOutput)
{
    Rng rng(0);
    std::set<std::uint64_t> values;
    for (int i = 0; i < 100; ++i)
        values.insert(rng.next());
    EXPECT_GT(values.size(), 90u);
}

TEST(Rng, UniformWithinBound)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(12);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniform(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(14);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, RealMeanIsCentered)
{
    Rng rng(15);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.real();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksP)
{
    Rng rng(16);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

} // anonymous namespace
} // namespace fetchsim
