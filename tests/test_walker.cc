/**
 * @file
 * Unit tests for per-scheme fetch-group formation: the heart of the
 * paper's hardware study.  Each scenario pins the predicted path,
 * BTB state and cache state, and checks exactly which instructions
 * each mechanism can align into one cycle's fetch group.
 */

#include <gtest/gtest.h>

#include "fetch/walker.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

/** Fixture: a 12-issue machine with tiny 16B (4-inst) blocks, so
 *  multi-block scenarios fit in small streams. */
class WalkerTest : public ::testing::Test
{
  protected:
    WalkerTest()
        : suite(1024, 4), icache(32 * 1024, 16, 2)
    {
        cfg = makeP14();
        cfg.issueRate = 12;
        cfg.blockBytes = 16;
        cfg.specDepth = 8;
        warmBlocks(0x10000, 64);
    }

    /** Fill the cache for @p count blocks starting at @p base. */
    void
    warmBlocks(std::uint64_t base, int count)
    {
        for (int i = 0; i < count; ++i)
            icache.access(base + static_cast<std::uint64_t>(i) * 16);
    }

    /** Train the BTB so @p pc predicts taken to @p target. */
    void
    train(std::uint64_t pc, std::uint64_t target)
    {
        suite.btb().update(pc, true, target);
    }

    FetchOutcome
    walk(SchemeKind kind, const std::vector<DynInst> &stream,
         int window_space = 64, int spec_headroom = -1)
    {
        FetchContext ctx;
        ctx.stream = stream.data();
        ctx.streamLen = static_cast<int>(stream.size());
        ctx.predictor = &suite;
        ctx.icache = &icache;
        ctx.cfg = &cfg;
        ctx.specHeadroom =
            spec_headroom < 0 ? cfg.specDepth : spec_headroom;
        ctx.windowSpace = window_space;
        return runWalk(rulesFor(kind), ctx);
    }

    MachineConfig cfg;
    PredictorSuite suite;
    ICache icache;
};

// Base address: 0x10000 is block-aligned (bank 0).
constexpr std::uint64_t kA = 0x10000;          // block A
constexpr std::uint64_t kB = kA + 16;          // block A+1 (bank 1)
constexpr std::uint64_t kC = kA + 32;          // block A+2 (bank 0)
constexpr std::uint64_t kD = kA + 48;          // block A+3 (bank 1)

std::vector<DynInst>
seqRun(std::uint64_t start, int count)
{
    std::vector<test::StreamSpec> specs;
    for (int i = 0; i < count; ++i)
        specs.push_back({start + static_cast<std::uint64_t>(i) * 4,
                         OpClass::IntAlu, false, 0});
    return test::makeStream(specs);
}

TEST_F(WalkerTest, SequentialFillsOneAlignedBlock)
{
    FetchOutcome out = walk(SchemeKind::Sequential, seqRun(kA, 8));
    EXPECT_EQ(out.delivered, 4);
    EXPECT_EQ(out.stop, FetchStop::BlockEnd);
}

TEST_F(WalkerTest, SequentialFromMidBlockDeliversRemainder)
{
    FetchOutcome out =
        walk(SchemeKind::Sequential, seqRun(kA + 8, 8));
    EXPECT_EQ(out.delivered, 2); // slots 2 and 3 only
    EXPECT_EQ(out.stop, FetchStop::BlockEnd);
}

TEST_F(WalkerTest, SequentialStopsAtPredictedTakenBranch)
{
    train(kA + 4, kC);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::Sequential, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::TakenBranch);
    EXPECT_FALSE(out.mispredict);
}

TEST_F(WalkerTest, SequentialContinuesPastNotTakenBranch)
{
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, false, 0},
        {kA + 8, OpClass::IntAlu, false, 0},
        {kA + 12, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::Sequential, stream);
    EXPECT_EQ(out.delivered, 4);
}

TEST_F(WalkerTest, MispredictStopsDeliveryAtBranch)
{
    // Cold BTB + actually-taken branch = mispredict.
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::Sequential, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::Mispredict);
    EXPECT_TRUE(out.mispredict);
}

TEST_F(WalkerTest, ColdJumpCausesDecodeRedirect)
{
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::Jump, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::Perfect, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::BtbMissControl);
    EXPECT_TRUE(out.decodeRedirect);
    EXPECT_FALSE(out.mispredict);
}

TEST_F(WalkerTest, InterleavedSpansTwoSequentialBlocks)
{
    FetchOutcome out =
        walk(SchemeKind::InterleavedSequential, seqRun(kA, 12));
    EXPECT_EQ(out.delivered, 8); // blocks A and B
    EXPECT_EQ(out.stop, FetchStop::BlockEnd);
}

TEST_F(WalkerTest, InterleavedFromMidBlockStillGetsTwoBlocks)
{
    FetchOutcome out =
        walk(SchemeKind::InterleavedSequential, seqRun(kA + 8, 12));
    EXPECT_EQ(out.delivered, 6); // 2 from A, 4 from B
    EXPECT_EQ(out.stop, FetchStop::BlockEnd);
}

TEST_F(WalkerTest, InterleavedCannotCrossTakenBranch)
{
    train(kA + 4, kB);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kB},
        {kB, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out =
        walk(SchemeKind::InterleavedSequential, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::TakenBranch);
}

TEST_F(WalkerTest, BankedCrossesInterBlockTakenBranch)
{
    train(kA + 4, kB); // target in the other bank
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kB},
        {kB, OpClass::IntAlu, false, 0},
        {kB + 4, OpClass::IntAlu, false, 0},
        {kB + 8, OpClass::IntAlu, false, 0},
        {kB + 12, OpClass::IntAlu, false, 0},
        {kC, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::BankedSequential, stream);
    EXPECT_EQ(out.delivered, 6); // 2 from A + 4 from B
    EXPECT_EQ(out.stop, FetchStop::BlockEnd); // no third block
}

TEST_F(WalkerTest, BankedStopsOnBankConflict)
{
    train(kA + 4, kC); // block A+2: same bank as A
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::BankedSequential, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::BankConflict);
}

TEST_F(WalkerTest, BankedCannotHandleIntraBlockBranch)
{
    train(kA + 4, kA + 12); // forward, same block
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kA + 12},
        {kA + 12, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::BankedSequential, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::IntraBlock);
}

TEST_F(WalkerTest, BankedCrossesBackwardInterBlockBranch)
{
    // Backward taken branch to a different bank works in banked
    // sequential (the paper only requires different banks).
    train(kB + 4, kA);
    auto stream = test::makeStream({
        {kB, OpClass::IntAlu, false, 0},
        {kB + 4, OpClass::CondBranch, true, kA},
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::BankedSequential, stream);
    EXPECT_EQ(out.delivered, 4);
}

TEST_F(WalkerTest, CollapsingRemovesIntraBlockForwardGap)
{
    train(kA + 4, kA + 12);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kA + 12},
        {kA + 12, OpClass::IntAlu, false, 0}, // gap collapsed
        {kB, OpClass::IntAlu, false, 0},
        {kB + 4, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::CollapsingBuffer, stream);
    EXPECT_EQ(out.delivered, 5); // everything, incl. block B
}

TEST_F(WalkerTest, CollapsingStopsAtBackwardIntraBlockBranch)
{
    train(kA + 8, kA); // backward, same block
    auto stream = test::makeStream({
        {kA + 4, OpClass::IntAlu, false, 0},
        {kA + 8, OpClass::CondBranch, true, kA},
        {kA, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::CollapsingBuffer, stream);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::BackwardIntra);
}

TEST_F(WalkerTest, CollapsingHandlesMultipleIntraBlockBranches)
{
    train(kA, kA + 8);
    train(kA + 8, kB + 4);
    auto stream = test::makeStream({
        {kA, OpClass::CondBranch, true, kA + 8},
        {kA + 8, OpClass::CondBranch, true, kB + 4},
        {kB + 4, OpClass::IntAlu, false, 0},
        {kB + 8, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::CollapsingBuffer, stream);
    EXPECT_EQ(out.delivered, 4);
}

TEST_F(WalkerTest, CollapsingStillLimitedToTwoBlocks)
{
    train(kA + 4, kB);
    train(kB + 4, kD);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kB},
        {kB, OpClass::IntAlu, false, 0},
        {kB + 4, OpClass::CondBranch, true, kD},
        {kD, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::CollapsingBuffer, stream);
    EXPECT_EQ(out.delivered, 4);
    EXPECT_EQ(out.stop, FetchStop::BlockEnd);
}

TEST_F(WalkerTest, ExtendedControllerCollapsesBackwardIntra)
{
    // The Section 3.3 extension: the crossbar may follow backward
    // intra-block targets (a tiny loop inside one block).
    train(kA + 8, kA);
    WalkRules rules = rulesFor(SchemeKind::CollapsingBuffer);
    rules.collapseIntraBackward = true;
    auto stream = test::makeStream({
        {kA + 4, OpClass::IntAlu, false, 0},
        {kA + 8, OpClass::CondBranch, true, kA},
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::IntAlu, false, 0},
    });
    FetchContext ctx;
    ctx.stream = stream.data();
    ctx.streamLen = static_cast<int>(stream.size());
    ctx.predictor = &suite;
    ctx.icache = &icache;
    ctx.cfg = &cfg;
    ctx.specHeadroom = cfg.specDepth;
    ctx.windowSpace = 64;
    FetchOutcome out = runWalk(rules, ctx);
    EXPECT_EQ(out.delivered, 4);
}

TEST_F(WalkerTest, PerfectCrossesEverything)
{
    train(kA + 4, kA + 12);
    train(kA + 12, kC);
    train(kC + 4, kB);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kA + 12},
        {kA + 12, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
        {kC + 4, OpClass::CondBranch, true, kB},
        {kB, OpClass::IntAlu, false, 0},
        {kB + 4, OpClass::IntAlu, false, 0},
        {kB + 8, OpClass::IntAlu, false, 0},
        {kB + 12, OpClass::IntAlu, false, 0},
        {kC + 8, OpClass::IntAlu, false, 0},
        {kC + 12, OpClass::IntAlu, false, 0},
        {kD, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::Perfect, stream);
    EXPECT_EQ(out.delivered, 12);
    EXPECT_EQ(out.stop, FetchStop::IssueLimit);
}

TEST_F(WalkerTest, SpeculationDepthGatesCondBranches)
{
    // Not-taken branches so alignment never interferes.
    auto stream = test::makeStream({
        {kA, OpClass::CondBranch, false, 0},
        {kA + 4, OpClass::CondBranch, false, 0},
        {kA + 8, OpClass::CondBranch, false, 0},
        {kA + 12, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out =
        walk(SchemeKind::Sequential, stream, 64, 2);
    EXPECT_EQ(out.delivered, 2);
    EXPECT_EQ(out.stop, FetchStop::SpecDepth);
}

TEST_F(WalkerTest, ZeroSpecHeadroomBlocksFirstBranch)
{
    auto stream = test::makeStream({
        {kA, OpClass::CondBranch, false, 0},
    });
    FetchOutcome out = walk(SchemeKind::Perfect, stream, 64, 0);
    EXPECT_EQ(out.delivered, 0);
    EXPECT_EQ(out.stop, FetchStop::SpecDepth);
}

TEST_F(WalkerTest, WindowSpaceLimitsGroup)
{
    FetchOutcome out =
        walk(SchemeKind::Sequential, seqRun(kA, 4), 3);
    EXPECT_EQ(out.delivered, 3);
    EXPECT_EQ(out.stop, FetchStop::WindowFull);
}

TEST_F(WalkerTest, NoWindowSpaceDeliversNothing)
{
    FetchOutcome out =
        walk(SchemeKind::Sequential, seqRun(kA, 4), 0);
    EXPECT_EQ(out.delivered, 0);
    EXPECT_EQ(out.stop, FetchStop::WindowFull);
}

TEST_F(WalkerTest, ColdFetchBlockStalls)
{
    const std::uint64_t cold = 0x40000; // never warmed
    FetchOutcome out =
        walk(SchemeKind::Sequential, seqRun(cold, 4));
    EXPECT_EQ(out.delivered, 0);
    EXPECT_EQ(out.stop, FetchStop::CacheMiss);
    EXPECT_EQ(out.stallAfter, cfg.icacheMissPenalty);
    // The miss filled the block: the retry hits.
    FetchOutcome retry =
        walk(SchemeKind::Sequential, seqRun(cold, 4));
    EXPECT_EQ(retry.delivered, 4);
}

TEST_F(WalkerTest, ColdSecondBlockDeliversPartialGroup)
{
    const std::uint64_t cold_base = 0x50000;
    icache.access(cold_base); // warm only the first block
    FetchOutcome out = walk(SchemeKind::InterleavedSequential,
                            seqRun(cold_base, 8));
    EXPECT_EQ(out.delivered, 4);
    EXPECT_EQ(out.stop, FetchStop::CacheMiss);
    EXPECT_EQ(out.stallAfter, cfg.icacheMissPenalty);
}

TEST_F(WalkerTest, EmptyStreamReturnsStreamEnd)
{
    std::vector<DynInst> empty;
    FetchOutcome out = walk(SchemeKind::Perfect, empty);
    EXPECT_EQ(out.delivered, 0);
    EXPECT_EQ(out.stop, FetchStop::StreamEnd);
}

/**
 * Dominance property over random streams: for identical predictor
 * and cache state, perfect >= collapsing >= banked >= sequential and
 * collapsing >= interleaved >= sequential in delivered count.
 * (Banked vs interleaved is incomparable in rare bank-conflict
 * cases, so it is not asserted.)
 */
TEST_F(WalkerTest, SchemeDominanceOnRandomStreams)
{
    Rng rng(2024);
    for (int round = 0; round < 300; ++round) {
        // Random predicted path over 8 blocks, all warmed.
        std::vector<test::StreamSpec> specs;
        std::uint64_t pc =
            kA + rng.uniform(8) * 16 + rng.uniform(4) * 4;
        for (int i = 0; i < 16; ++i) {
            if (rng.bernoulli(0.3)) {
                std::uint64_t target =
                    kA + rng.uniform(8) * 16 + rng.uniform(4) * 4;
                specs.push_back(
                    {pc, OpClass::CondBranch, true, target});
                train(pc, target);
                pc = target;
            } else {
                specs.push_back({pc, OpClass::IntAlu, false, 0});
                pc += 4;
            }
        }
        auto stream = test::makeStream(specs);
        const int seq =
            walk(SchemeKind::Sequential, stream).delivered;
        const int inter =
            walk(SchemeKind::InterleavedSequential, stream).delivered;
        const int banked =
            walk(SchemeKind::BankedSequential, stream).delivered;
        const int collapse =
            walk(SchemeKind::CollapsingBuffer, stream).delivered;
        const int perfect =
            walk(SchemeKind::Perfect, stream).delivered;
        ASSERT_LE(seq, inter);
        ASSERT_LE(inter, collapse);
        ASSERT_LE(banked, collapse);
        ASSERT_LE(collapse, perfect);
        ASSERT_LE(perfect, cfg.issueRate);
    }
}

} // anonymous namespace
} // namespace fetchsim
