/**
 * @file
 * Unit tests for the program representation and the layout pass.
 */

#include <gtest/gtest.h>

#include "isa/encoding.h"
#include "program/layout.h"
#include "program/program.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

TEST(Program, AddFunctionAndBlocks)
{
    Program prog("p");
    FuncId f0 = prog.addFunction("main");
    FuncId f1 = prog.addFunction("helper");
    EXPECT_EQ(prog.numFunctions(), 2u);
    BlockId b0 = prog.addBlock(f0);
    BlockId b1 = prog.addBlock(f1);
    EXPECT_EQ(prog.numBlocks(), 2u);
    EXPECT_EQ(prog.block(b0).func, f0);
    EXPECT_EQ(prog.block(b1).func, f1);
    EXPECT_EQ(prog.function(f0).blocks.size(), 1u);
    EXPECT_EQ(prog.layoutOrder().size(), 2u);
}

TEST(Program, TotalInstructionCounts)
{
    Workload wl = test::straightLineWorkload(7);
    EXPECT_EQ(wl.program.totalInstructions(), 8u); // 7 alu + ret
    EXPECT_EQ(wl.program.totalNops(), 0u);
}

TEST(Program, TotalNopsCountsPadding)
{
    Workload wl = test::straightLineWorkload(3);
    BasicBlock &bb = wl.program.block(0);
    bb.body.insert(bb.body.begin(), makeNop());
    EXPECT_EQ(wl.program.totalNops(), 1u);
}

TEST(Layout, ContiguousAddresses)
{
    Workload wl = test::hammockWorkload(3, 2, 0.5);
    const Program &prog = wl.program;
    std::uint64_t expected = kDefaultCodeBase;
    for (BlockId id : prog.layoutOrder()) {
        EXPECT_EQ(prog.block(id).address, expected);
        expected += static_cast<std::uint64_t>(prog.block(id).size()) *
                    kInstBytes;
    }
}

TEST(Layout, ReturnsImageEnd)
{
    Workload wl = test::straightLineWorkload(4);
    std::uint64_t end = assignAddresses(wl.program, 0x2000);
    EXPECT_EQ(end, 0x2000 + 5 * kInstBytes);
}

TEST(Layout, BranchDisplacementResolved)
{
    Workload wl = test::hammockWorkload(2, 3, 0.5);
    const Program &prog = wl.program;
    const BasicBlock &head = prog.block(0);
    // Branch is the last inst of head; target is the join block.
    int ci = head.controlIndex();
    std::uint64_t branch_addr = head.instAddr(ci);
    std::uint64_t target = prog.block(head.takenTarget).address;
    EXPECT_EQ(branch_addr + static_cast<std::int64_t>(
                                head.body[ci].imm) * kInstBytes,
              target);
}

TEST(Layout, CallDisplacementTargetsCalleeEntry)
{
    Workload wl = test::callWorkload(3);
    const Program &prog = wl.program;
    const BasicBlock &m0 = prog.block(0);
    ASSERT_EQ(m0.term, TermKind::CallFall);
    int ci = m0.controlIndex();
    std::uint64_t call_addr = m0.instAddr(ci);
    const Function &callee = prog.function(m0.callee);
    EXPECT_EQ(call_addr + static_cast<std::int64_t>(
                              m0.body[ci].imm) * kInstBytes,
              prog.block(callee.entry).address);
}

TEST(Layout, ControlTargetAddr)
{
    Workload wl = test::hammockWorkload(1, 1, 0.5);
    const Program &prog = wl.program;
    const BasicBlock &head = prog.block(0);
    EXPECT_EQ(controlTargetAddr(prog, head),
              prog.block(head.takenTarget).address);
}

TEST(Layout, ReassignAfterPermutation)
{
    Workload wl = test::hammockWorkload(2, 2, 0.5);
    Program &prog = wl.program;
    // Swap clause and join in the layout, then re-address.
    std::swap(prog.layoutOrder()[1], prog.layoutOrder()[2]);
    assignAddresses(prog);
    std::uint64_t expected = kDefaultCodeBase;
    for (BlockId id : prog.layoutOrder()) {
        EXPECT_EQ(prog.block(id).address, expected);
        expected += static_cast<std::uint64_t>(prog.block(id).size()) *
                    kInstBytes;
    }
    // Displacements still point at the (moved) targets.
    const BasicBlock &head = prog.block(0);
    int ci = head.controlIndex();
    EXPECT_EQ(head.instAddr(ci) + static_cast<std::int64_t>(
                                      head.body[ci].imm) * kInstBytes,
              prog.block(head.takenTarget).address);
}

TEST(Layout, CheckEncodablePasses)
{
    Workload wl = test::hammockWorkload(2, 2, 0.5);
    checkEncodable(wl.program); // must not panic
}

TEST(BasicBlock, ControlIndexPerTerminator)
{
    Workload wl = test::hammockWorkload(2, 1, 0.5);
    const Program &prog = wl.program;
    EXPECT_EQ(prog.block(0).controlIndex(), 2); // 2 alu + branch
    EXPECT_EQ(prog.block(1).controlIndex(), -1); // fall-through
}

TEST(BasicBlock, AddressHelpers)
{
    BasicBlock bb;
    bb.address = 0x100;
    bb.body.push_back(makeNop());
    bb.body.push_back(makeNop());
    EXPECT_EQ(bb.instAddr(0), 0x100u);
    EXPECT_EQ(bb.instAddr(1), 0x104u);
    EXPECT_EQ(bb.endAddr(), 0x108u);
    EXPECT_EQ(bb.size(), 2);
}

TEST(Validate, AcceptsWellFormedPrograms)
{
    test::straightLineWorkload(3).program.validate();
    test::loopWorkload(4, 10).program.validate();
    test::hammockWorkload(2, 2, 0.5).program.validate();
    test::callWorkload(5).program.validate();
}

using ProgramDeath = ::testing::Test;

TEST(ProgramDeath, RejectsDanglingCondTarget)
{
    Workload wl = test::hammockWorkload(1, 1, 0.5);
    wl.program.block(0).takenTarget = kNoBlock;
    EXPECT_DEATH(wl.program.validate(), "cond targets set");
}

TEST(ProgramDeath, RejectsWrongTerminatorShape)
{
    Workload wl = test::straightLineWorkload(2);
    // Return block whose last inst is not a return.
    wl.program.block(0).body.back() = makeIntAlu(1, 1, 2);
    EXPECT_DEATH(wl.program.validate(), "ends in ret");
}

TEST(ProgramDeath, RejectsCrossFunctionBranch)
{
    Workload wl = test::callWorkload(2);
    Program &prog = wl.program;
    // Retarget main's m1 fall-through... use cond branch misuse:
    // make m0's call target a block instead by corrupting the
    // callee's entry ownership.
    prog.block(2).func = 0; // steal callee block into main
    EXPECT_DEATH(prog.validate(), "owned by");
}

} // anonymous namespace
} // namespace fetchsim
