/**
 * @file
 * The SweepEngine determinism contract: one plan executed at 1, 2 and
 * 8 worker threads must produce bit-identical counters, in the same
 * (plan) order.  Also exercises the Session cache under real
 * concurrency: many threads requesting the same workload must get the
 * same object, prepared exactly once.
 *
 * This test is the designated ThreadSanitizer target (configure with
 * -DFETCHSIM_SANITIZE=thread and run ctest -R Sweep).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/plan.h"
#include "sim/session.h"
#include "sim/sweep.h"

namespace fetchsim
{
namespace
{

/** A small but heterogeneous plan: 2 benchmarks x 2 machines x 3
 * schemes x 2 layouts = 24 runs, more runs than the widest pool. */
ExperimentPlan
testPlan()
{
    ExperimentPlan plan;
    plan.benchmarks({"compress", "eqntott"})
        .machines({MachineModel::P14, MachineModel::P112})
        .schemes({SchemeKind::Sequential, SchemeKind::CollapsingBuffer,
                  SchemeKind::Perfect})
        .layouts({LayoutKind::Unordered, LayoutKind::Reordered})
        .maxRetired(5000);
    return plan;
}

SweepResult
runWithThreads(int threads)
{
    Session session;
    SweepOptions options;
    options.threads = threads;
    SweepEngine engine(session, options);
    EXPECT_EQ(engine.threads(), threads);
    return engine.run(testPlan());
}

void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        // Same config at the same index: order is plan order, never
        // completion order.
        EXPECT_EQ(a.runs[i].config.benchmark,
                  b.runs[i].config.benchmark);
        EXPECT_EQ(a.runs[i].config.machine, b.runs[i].config.machine);
        EXPECT_EQ(a.runs[i].config.scheme, b.runs[i].config.scheme);
        EXPECT_EQ(a.runs[i].config.layout, b.runs[i].config.layout);

        // Bit-identical counters.
        const RunCounters &ca = a.runs[i].counters;
        const RunCounters &cb = b.runs[i].counters;
        EXPECT_EQ(ca.cycles, cb.cycles) << "run " << i;
        EXPECT_EQ(ca.retired, cb.retired) << "run " << i;
        EXPECT_EQ(ca.delivered, cb.delivered) << "run " << i;
        EXPECT_EQ(ca.mispredicts, cb.mispredicts) << "run " << i;
        EXPECT_EQ(ca.icacheMisses, cb.icacheMisses) << "run " << i;
        EXPECT_EQ(ca.icacheAccesses, cb.icacheAccesses)
            << "run " << i;
        EXPECT_EQ(ca.btbHits, cb.btbHits) << "run " << i;
        EXPECT_EQ(ca.stallCycles, cb.stallCycles) << "run " << i;
        for (int s = 0; s < kNumFetchStops; ++s)
            EXPECT_EQ(ca.stops[s], cb.stops[s])
                << "run " << i << " stop " << s;
    }
}

TEST(SweepParallel, ThreadCountDoesNotChangeResults)
{
    const SweepResult serial = runWithThreads(1);
    const SweepResult two = runWithThreads(2);
    const SweepResult eight = runWithThreads(8);
    ASSERT_EQ(serial.runs.size(), 24u);
    expectIdentical(serial, two);
    expectIdentical(serial, eight);
}

TEST(SweepParallel, ResultsArriveInPlanOrder)
{
    const std::vector<RunConfig> expanded = testPlan().expand();
    const SweepResult sweep = runWithThreads(8);
    ASSERT_EQ(sweep.runs.size(), expanded.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        EXPECT_EQ(sweep.runs[i].config.benchmark,
                  expanded[i].benchmark);
        EXPECT_EQ(sweep.runs[i].config.machine, expanded[i].machine);
        EXPECT_EQ(sweep.runs[i].config.scheme, expanded[i].scheme);
        EXPECT_EQ(sweep.runs[i].config.layout, expanded[i].layout);
    }
}

TEST(SweepParallel, ProgressSeesEveryRunExactlyOnce)
{
    Session session;
    SweepOptions options;
    options.threads = 4;
    std::atomic<std::size_t> calls{0};
    std::size_t last_done = 0;
    options.progress = [&](std::size_t done, std::size_t total,
                           const RunResult &result) {
        // Serialized: no lock needed for last_done.
        ++calls;
        EXPECT_EQ(total, 24u);
        EXPECT_EQ(done, last_done + 1);
        last_done = done;
        EXPECT_GT(result.counters.retired, 0u);
    };
    SweepEngine engine(session, options);
    engine.run(testPlan());
    EXPECT_EQ(calls.load(), 24u);
}

TEST(SweepParallel, EmptyBatchIsFine)
{
    Session session;
    SweepEngine engine(session);
    SweepResult sweep = engine.run(std::vector<RunConfig>{});
    EXPECT_TRUE(sweep.runs.empty());
}

TEST(SessionConcurrency, WorkloadPreparedOnceUnderContention)
{
    // 8 threads race for the same keys; everyone must observe the
    // same Workload addresses and the cache must hold exactly the
    // distinct keys requested.
    Session session;
    constexpr int kThreads = 8;
    std::vector<const Workload *> unordered(kThreads, nullptr);
    std::vector<const Workload *> reordered(kThreads, nullptr);
    {
        std::vector<std::thread> pool;
        pool.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            pool.emplace_back([&session, &unordered, &reordered, t] {
                unordered[static_cast<std::size_t>(t)] =
                    &session.workload("compress",
                                      LayoutKind::Unordered);
                reordered[static_cast<std::size_t>(t)] =
                    &session.workload("compress",
                                      LayoutKind::Reordered);
            });
        }
        for (std::thread &thread : pool)
            thread.join();
    }
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(unordered[static_cast<std::size_t>(t)],
                  unordered[0]);
        EXPECT_EQ(reordered[static_cast<std::size_t>(t)],
                  reordered[0]);
    }
    EXPECT_NE(unordered[0], reordered[0]);
    EXPECT_EQ(session.cachedWorkloads(), 2u);
}

TEST(SessionConcurrency, ReferencesSurviveConcurrentGrowth)
{
    // The lifetime satellite: a reference taken early stays valid
    // (same address, readable) while other threads grow the cache.
    Session session;
    const Workload &early =
        session.workload("li", LayoutKind::Unordered);
    const std::size_t blocks = early.program.numBlocks();

    const char *names[] = {"compress", "eqntott", "espresso", "gcc"};
    std::vector<std::thread> pool;
    for (const char *name : names) {
        pool.emplace_back([&session, name] {
            session.workload(name, LayoutKind::Unordered);
            session.workload(name, LayoutKind::Reordered);
        });
    }
    for (std::thread &thread : pool)
        thread.join();

    const Workload &again =
        session.workload("li", LayoutKind::Unordered);
    EXPECT_EQ(&early, &again);
    EXPECT_EQ(early.program.numBlocks(), blocks);
    EXPECT_EQ(session.cachedWorkloads(), 9u);
}

} // anonymous namespace
} // namespace fetchsim
