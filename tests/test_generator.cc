/**
 * @file
 * Tests for the synthetic-program generator and the benchmark suite,
 * including parameterized structural properties over all fifteen
 * benchmarks.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/encoding.h"
#include "program/layout.h"
#include "workload/benchmark_suite.h"
#include "workload/generator.h"

namespace fetchsim
{
namespace
{

TEST(Suite, HasFifteenBenchmarks)
{
    EXPECT_EQ(integerSuite().size(), 9u);
    EXPECT_EQ(fpSuite().size(), 6u);
    EXPECT_EQ(fullSuite().size(), 15u);
}

TEST(Suite, PaperBenchmarkNamesPresent)
{
    for (const char *name :
         {"bison", "compress", "eqntott", "espresso", "flex", "gcc",
          "li", "mpeg_play", "sc", "doduc", "mdljdp2", "nasa7", "ora",
          "tomcatv", "wave5"}) {
        EXPECT_TRUE(hasBenchmark(name)) << name;
    }
    EXPECT_FALSE(hasBenchmark("quake"));
}

TEST(Suite, LookupReturnsMatchingSpec)
{
    const WorkloadSpec &spec = benchmarkByName("compress");
    EXPECT_EQ(spec.name, "compress");
    EXPECT_FALSE(spec.isFp);
    EXPECT_TRUE(benchmarkByName("nasa7").isFp);
}

TEST(Suite, SeedsAreUnique)
{
    std::set<std::uint64_t> seeds;
    for (const auto &spec : fullSuite())
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), fullSuite().size());
}

TEST(Generator, DeterministicForSameSpec)
{
    const WorkloadSpec &spec = benchmarkByName("compress");
    Workload a = generateWorkload(spec);
    Workload b = generateWorkload(spec);
    ASSERT_EQ(a.program.numBlocks(), b.program.numBlocks());
    ASSERT_EQ(a.program.totalInstructions(),
              b.program.totalInstructions());
    for (std::size_t i = 0; i < a.program.numBlocks(); ++i) {
        const auto &ba = a.program.block(static_cast<BlockId>(i));
        const auto &bb = b.program.block(static_cast<BlockId>(i));
        ASSERT_EQ(ba.address, bb.address);
        ASSERT_EQ(ba.term, bb.term);
        ASSERT_EQ(ba.size(), bb.size());
    }
}

TEST(Generator, DifferentSeedsProduceDifferentPrograms)
{
    WorkloadSpec spec = benchmarkByName("compress");
    Workload a = generateWorkload(spec);
    spec.seed ^= 0x1234567;
    Workload b = generateWorkload(spec);
    EXPECT_NE(a.program.totalInstructions(),
              b.program.totalInstructions());
}

TEST(Generator, RejectsBadSpecs)
{
    WorkloadSpec spec = benchmarkByName("compress");
    spec.numFunctions = 0;
    EXPECT_EXIT(generateWorkload(spec),
                ::testing::ExitedWithCode(1), "function");
}

/** Structural properties that must hold for every benchmark. */
class SuiteProperty : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(SuiteProperty, GeneratesValidEncodableProgram)
{
    Workload wl = generateWorkload(GetParam());
    wl.program.validate();
    checkEncodable(wl.program);
    EXPECT_EQ(wl.program.numFunctions(),
              static_cast<std::size_t>(GetParam().numFunctions));
    EXPECT_GT(wl.program.totalInstructions(), 100u);
    EXPECT_EQ(wl.program.totalNops(), 0u); // no padding yet
}

TEST_P(SuiteProperty, EveryFunctionEndsReachableReturn)
{
    Workload wl = generateWorkload(GetParam());
    const Program &prog = wl.program;
    for (std::size_t f = 0; f < prog.numFunctions(); ++f) {
        const Function &fn = prog.function(static_cast<FuncId>(f));
        bool has_return = false;
        for (BlockId id : fn.blocks)
            has_return |= prog.block(id).term == TermKind::Return;
        EXPECT_TRUE(has_return) << "function " << fn.name;
    }
}

TEST_P(SuiteProperty, CallGraphIsAcyclic)
{
    Workload wl = generateWorkload(GetParam());
    const Program &prog = wl.program;
    for (std::size_t b = 0; b < prog.numBlocks(); ++b) {
        const BasicBlock &bb = prog.block(static_cast<BlockId>(b));
        if (bb.term == TermKind::CallFall) {
            EXPECT_GT(bb.callee, bb.func)
                << "forward-only calls keep the graph acyclic";
        }
    }
}

TEST_P(SuiteProperty, CondBranchesHaveBehaviors)
{
    Workload wl = generateWorkload(GetParam());
    const Program &prog = wl.program;
    std::uint64_t cond_blocks = 0;
    for (std::size_t b = 0; b < prog.numBlocks(); ++b) {
        const BasicBlock &bb = prog.block(static_cast<BlockId>(b));
        if (bb.hasCondBranch()) {
            ++cond_blocks;
            ASSERT_LT(bb.behavior, wl.behaviors.size());
        }
    }
    EXPECT_GT(cond_blocks, 0u);
}

TEST_P(SuiteProperty, InstructionMixMatchesClass)
{
    const WorkloadSpec &spec = GetParam();
    Workload wl = generateWorkload(spec);
    std::uint64_t fp = 0, total = 0;
    for (std::size_t b = 0; b < wl.program.numBlocks(); ++b) {
        for (const auto &inst :
             wl.program.block(static_cast<BlockId>(b)).body) {
            ++total;
            fp += inst.op == OpClass::FpAlu ? 1 : 0;
        }
    }
    double fp_share = static_cast<double>(fp) /
                      static_cast<double>(total);
    if (spec.isFp)
        EXPECT_GT(fp_share, 0.15) << "FP code should contain FP ops";
    else
        EXPECT_EQ(fp, 0u) << "integer code has no FP ops";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteProperty,
    ::testing::ValuesIn(fullSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

} // anonymous namespace
} // namespace fetchsim
