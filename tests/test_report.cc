/**
 * @file
 * Tests for structured result output: the generic JSON/CSV writers in
 * src/stats/ and the RunResult serialization built on them.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"
#include "sim/session.h"
#include "stats/csv.h"
#include "stats/json.h"

namespace fetchsim
{
namespace
{

// ---------------------------------------------------------------- JSON

TEST(Json, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, NumbersRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(std::stod(jsonNumber(1.0 / 3.0)), 1.0 / 3.0);
    EXPECT_EQ(std::stod(jsonNumber(2.875)), 2.875);
}

TEST(Json, CompactObjectStructure)
{
    std::ostringstream os;
    {
        JsonWriter json(os, 0);
        json.beginObject();
        json.key("name").value("gcc");
        json.key("ipc").value(2.5);
        json.key("ok").value(true);
        json.key("tags").beginArray();
        json.value(std::uint64_t{1}).value(std::uint64_t{2});
        json.endArray();
        json.endObject();
        EXPECT_EQ(json.depth(), 0u);
    }
    EXPECT_EQ(os.str(), "{\"name\":\"gcc\",\"ipc\":2.5,\"ok\":true,"
                        "\"tags\":[1,2]}");
}

TEST(Json, IndentedOutputNests)
{
    std::ostringstream os;
    {
        JsonWriter json(os, 2);
        json.beginObject();
        json.key("a").value(1);
        json.endObject();
    }
    EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    EXPECT_DEATH(
        {
            std::ostringstream os;
            JsonWriter json(os, 0);
            json.key("oops");
        },
        "");
}

// ----------------------------------------------------------------- CSV

TEST(Csv, EscapesOnlyWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WritesRectangularTable)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.header({"benchmark", "ipc", "ok"});
    csv.field("gcc").field(2.5).field(true).endRow();
    csv.field("a,b").field(0.25).field(false).endRow();
    EXPECT_EQ(csv.rowCount(), 2u);
    EXPECT_EQ(os.str(), "benchmark,ipc,ok\n"
                        "gcc,2.5,true\n"
                        "\"a,b\",0.25,false\n");
}

TEST(CsvDeath, ShortRowPanics)
{
    EXPECT_DEATH(
        {
            std::ostringstream os;
            CsvWriter csv(os);
            csv.header({"a", "b"});
            csv.field("only-one").endRow();
        },
        "");
}

// -------------------------------------------------------------- results

RunResult
sampleResult()
{
    Session session;
    RunConfig config;
    config.benchmark = "compress";
    config.machine = MachineModel::P14;
    config.scheme = SchemeKind::CollapsingBuffer;
    config.maxRetired = 5000;
    return session.run(config);
}

TEST(Report, RunToJsonCarriesConfigAndCounters)
{
    RunResult result = sampleResult();
    const std::string json = result.toJson();
    EXPECT_NE(json.find("\"benchmark\":\"compress\""),
              std::string::npos);
    EXPECT_NE(json.find("\"machine\":\"P14\""), std::string::npos);
    EXPECT_NE(json.find("\"scheme\":\"collapsing-buffer\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cycles\":" +
                        std::to_string(result.counters.cycles)),
              std::string::npos);
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
    // Compact form: single line.
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Report, RunsJsonDocumentHasRunsAndMeans)
{
    RunResult result = sampleResult();
    std::ostringstream os;
    writeRunsJson(os, {result, result});
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"runs\""), std::string::npos);
    // Both runs have positive rates, so the suite means are present.
    EXPECT_NE(doc.find("\"hmean_ipc\""), std::string::npos);
    EXPECT_NE(doc.find("\"hmean_eir\""), std::string::npos);
}

TEST(Report, EmptyRunsJsonOmitsMeans)
{
    std::ostringstream os;
    writeRunsJson(os, {});
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"runs\""), std::string::npos);
    EXPECT_EQ(doc.find("\"hmean_ipc\""), std::string::npos);
}

TEST(Report, RunsCsvIsRectangular)
{
    RunResult result = sampleResult();
    std::ostringstream os;
    writeRunsCsv(os, {result, result, result});
    // Header + 3 rows, all with the full column count.
    std::istringstream lines(os.str());
    std::string line;
    std::size_t line_count = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++line_count;
        std::size_t commas = 0;
        for (char ch : line)
            commas += ch == ',' ? 1 : 0;
        EXPECT_EQ(commas + 1, runCsvHeader().size()) << line;
    }
    EXPECT_EQ(line_count, 4u);
    EXPECT_EQ(os.str().rfind("benchmark,machine,scheme", 0), 0u);
}

TEST(Report, CbImplNames)
{
    EXPECT_STREQ(cbImplName(CollapsingBufferFetch::Impl::Crossbar),
                 "crossbar");
    EXPECT_STREQ(cbImplName(CollapsingBufferFetch::Impl::Shifter),
                 "shifter");
}

} // anonymous namespace
} // namespace fetchsim
