/**
 * @file
 * Checkpoint/resume tests: content-key stability, journal-line
 * round-trips, torn-line handling, sweep-level resume determinism,
 * and report-level byte-identity (a resumed report matches an
 * uninterrupted one bit for bit).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>

#include "sim/checkpoint.h"
#include "sim/plan.h"
#include "sim/repro_report.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/counters.h"

namespace fetchsim
{
namespace
{

Session &
testSession()
{
    static Session session;
    return session;
}

/** Unique scratch path per test (tests may run concurrently). */
std::string
scratchPath(const char *tag)
{
    return ::testing::TempDir() + "fetchsim_" + tag + "_" +
           std::to_string(::getpid()) + ".jsonl";
}

RunConfig
baseConfig()
{
    RunConfig config;
    config.benchmark = "compress";
    config.machine = MachineModel::P14;
    config.scheme = SchemeKind::Sequential;
    config.maxRetired = 2000;
    return config;
}

ExperimentPlan
smallPlan()
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "compress", "eqntott"})
        .machine(MachineModel::P14)
        .schemes({SchemeKind::Sequential, SchemeKind::Perfect})
        .maxRetired(2000);
    return plan;
}

RunCounters
sampleCounters()
{
    RunCounters c;
    c.cycles = 1234;
    c.retired = 2000;
    c.delivered = 2345;
    c.fetchGroups = 800;
    c.condBranches = 300;
    c.takenBranches = 210;
    c.intraBlockTaken = 17;
    c.mispredicts = 23;
    c.controlMispredicts = 29;
    c.icacheAccesses = 900;
    c.icacheMisses = 31;
    c.btbLookups = 880;
    c.btbHits = 760;
    c.stallCycles = 111;
    c.nopsRetired = 5;
    c.nopsDelivered = 7;
    for (std::size_t i = 0; i < kNumFetchStops; ++i)
        c.stops[i] = 40 + i;
    return c;
}

// --------------------------------------------------- content keys

TEST(RunKey, StableForIdenticalConfigs)
{
    EXPECT_EQ(runKey(baseConfig()), runKey(baseConfig()));
}

TEST(RunKey, SensitiveToEveryCounterAffectingField)
{
    const std::uint64_t base = runKey(baseConfig());

    RunConfig c = baseConfig();
    c.benchmark = "eqntott";
    EXPECT_NE(runKey(c), base);

    c = baseConfig();
    c.machine = MachineModel::P18;
    EXPECT_NE(runKey(c), base);

    c = baseConfig();
    c.scheme = SchemeKind::Perfect;
    EXPECT_NE(runKey(c), base);

    c = baseConfig();
    c.layout = LayoutKind::Reordered;
    EXPECT_NE(runKey(c), base);

    c = baseConfig();
    c.maxRetired = 4000;
    EXPECT_NE(runKey(c), base);

    c = baseConfig();
    c.useRas = true;
    EXPECT_NE(runKey(c), base);

    c = baseConfig();
    c.btbEntriesOverride = 64;
    EXPECT_NE(runKey(c), base);
}

TEST(RunKey, BudgetIsHashedInResolvedForm)
{
    // A journal written at the default budget must satisfy a config
    // that spells the same budget explicitly, and vice versa.
    RunConfig implicit = baseConfig();
    implicit.maxRetired = 0;
    RunConfig explicit_budget = baseConfig();
    explicit_budget.maxRetired = defaultDynInsts();
    EXPECT_EQ(runKey(implicit), runKey(explicit_budget));
}

TEST(RunKey, HexIsFixedWidthLowercase)
{
    const std::string hex = runKeyHex(0x1fu);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex, "000000000000001f");
}

// ------------------------------------------------ line round-trip

TEST(CheckpointLine, RoundTripsEveryField)
{
    const RunCounters c = sampleCounters();
    const std::uint64_t key = runKey(baseConfig());
    const std::string line = checkpointLine(key, c);

    auto parsed = parseCheckpointLine(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().format();
    EXPECT_EQ(parsed.value().first, key);

    const RunCounters &r = parsed.value().second;
    EXPECT_EQ(r.cycles, c.cycles);
    EXPECT_EQ(r.retired, c.retired);
    EXPECT_EQ(r.delivered, c.delivered);
    EXPECT_EQ(r.fetchGroups, c.fetchGroups);
    EXPECT_EQ(r.condBranches, c.condBranches);
    EXPECT_EQ(r.takenBranches, c.takenBranches);
    EXPECT_EQ(r.intraBlockTaken, c.intraBlockTaken);
    EXPECT_EQ(r.mispredicts, c.mispredicts);
    EXPECT_EQ(r.controlMispredicts, c.controlMispredicts);
    EXPECT_EQ(r.icacheAccesses, c.icacheAccesses);
    EXPECT_EQ(r.icacheMisses, c.icacheMisses);
    EXPECT_EQ(r.btbLookups, c.btbLookups);
    EXPECT_EQ(r.btbHits, c.btbHits);
    EXPECT_EQ(r.stallCycles, c.stallCycles);
    EXPECT_EQ(r.nopsRetired, c.nopsRetired);
    EXPECT_EQ(r.nopsDelivered, c.nopsDelivered);
    for (std::size_t i = 0; i < kNumFetchStops; ++i)
        EXPECT_EQ(r.stops[i], c.stops[i]) << i;
}

TEST(CheckpointLine, TornAndGarbageLinesAreIoErrors)
{
    const std::string line =
        checkpointLine(42, sampleCounters());
    // A hard kill can tear the final line at any byte; every prefix
    // must be rejected, never misparsed.
    for (std::size_t cut : {line.size() - 1, line.size() / 2,
                            std::size_t{1}}) {
        auto parsed = parseCheckpointLine(line.substr(0, cut));
        ASSERT_FALSE(parsed.ok()) << cut;
        EXPECT_EQ(parsed.error().kind, ErrorKind::Io) << cut;
    }
    EXPECT_FALSE(parseCheckpointLine("not json").ok());
    EXPECT_FALSE(parseCheckpointLine("").ok());
}

// ------------------------------------------------- journal + load

TEST(Checkpoint, MissingFileLoadsEmpty)
{
    auto loaded =
        loadCheckpoint(scratchPath("does_not_exist"));
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value().empty());
}

TEST(Checkpoint, JournalRecordsAndReloads)
{
    const std::string path = scratchPath("journal");
    std::remove(path.c_str());

    const RunCounters c = sampleCounters();
    {
        CheckpointJournal journal(path, /*append=*/false);
        journal.record(7, c);
        journal.record(9, c);
        EXPECT_TRUE(journal.healthy());
        EXPECT_EQ(journal.recorded(), 2u);
    }

    auto loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().format();
    ASSERT_EQ(loaded.value().size(), 2u);
    EXPECT_EQ(loaded.value().at(7).cycles, c.cycles);
    EXPECT_EQ(loaded.value().at(9).retired, c.retired);
    std::remove(path.c_str());
}

TEST(Checkpoint, FreshOpenTruncatesStaleJournal)
{
    const std::string path = scratchPath("truncate");
    {
        CheckpointJournal journal(path, /*append=*/false);
        journal.record(1, sampleCounters());
    }
    {
        CheckpointJournal journal(path, /*append=*/false);
        journal.record(2, sampleCounters());
    }
    auto loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 1u);
    EXPECT_EQ(loaded.value().count(2), 1u);
    std::remove(path.c_str());
}

TEST(Checkpoint, BadLinesAreSkippedNotFatal)
{
    const std::string path = scratchPath("badlines");
    {
        std::ofstream os(path);
        os << checkpointLine(5, sampleCounters()) << "\n";
        os << "garbage line\n";
        // A torn final line (hard-kill artifact).
        const std::string torn = checkpointLine(6, sampleCounters());
        os << torn.substr(0, torn.size() / 2);
    }
    auto loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 1u);
    EXPECT_EQ(loaded.value().count(5), 1u);
    std::remove(path.c_str());
}

// ----------------------------------------- sweep-level resumption

TEST(CheckpointResume, ResumedSweepMatchesCleanSweepExactly)
{
    const std::string path = scratchPath("sweep_resume");
    std::remove(path.c_str());

    SweepOptions plain_options;
    plain_options.threads = 1;
    SweepEngine plain(testSession(), plain_options);
    SweepResult expected = plain.run(smallPlan());
    ASSERT_TRUE(expected.allOk());

    // First pass journals every cell.
    SweepOptions first_options;
    first_options.threads = 1;
    first_options.checkpointPath = path;
    SweepEngine first(testSession(), first_options);
    SweepResult journaled = first.run(smallPlan());
    ASSERT_TRUE(journaled.allOk());

    // Second pass resumes: every cell must come from the journal and
    // carry bit-identical counters.
    SweepOptions resume_options;
    resume_options.threads = 1;
    resume_options.checkpointPath = path;
    resume_options.resume = true;
    SweepEngine second(testSession(), resume_options);
    SweepResult resumed = second.run(smallPlan());

    ASSERT_TRUE(resumed.allOk());
    ASSERT_EQ(resumed.runs.size(), expected.runs.size());
    for (std::size_t i = 0; i < expected.runs.size(); ++i) {
        EXPECT_TRUE(resumed.statuses[i].fromCheckpoint) << i;
        EXPECT_EQ(resumed.runs[i].counters.cycles,
                  expected.runs[i].counters.cycles)
            << i;
        EXPECT_EQ(resumed.runs[i].counters.retired,
                  expected.runs[i].counters.retired)
            << i;
        EXPECT_EQ(resumed.runs[i].counters.mispredicts,
                  expected.runs[i].counters.mispredicts)
            << i;
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, InterruptedSweepResumesWhereItStopped)
{
    const std::string path = scratchPath("sweep_interrupt");
    std::remove(path.c_str());
    clearSweepStop();

    // Clean reference run.
    SweepOptions plain_options;
    plain_options.threads = 1;
    SweepEngine plain(testSession(), plain_options);
    SweepResult expected = plain.run(smallPlan());

    // Interrupt after two cells: the stop request drains the sweep
    // with the finished cells already journaled.
    SweepOptions stop_options;
    stop_options.threads = 1;
    stop_options.checkpointPath = path;
    std::size_t seen = 0;
    stop_options.progress = [&](std::size_t, std::size_t,
                                const RunResult &) {
        if (++seen == 2)
            requestSweepStop();
    };
    SweepEngine interrupted(testSession(), stop_options);
    SweepResult partial = interrupted.run(smallPlan());
    clearSweepStop();

    ASSERT_TRUE(partial.stopped);
    ASSERT_EQ(partial.countWith(RunOutcome::Ok), 2u);

    // Resume completes only the unfinished cells and the merged
    // result is bit-identical to the uninterrupted sweep.
    SweepOptions resume_options;
    resume_options.threads = 1;
    resume_options.checkpointPath = path;
    resume_options.resume = true;
    SweepEngine resumer(testSession(), resume_options);
    SweepResult resumed = resumer.run(smallPlan());

    ASSERT_TRUE(resumed.allOk());
    EXPECT_FALSE(resumed.stopped);
    std::size_t from_checkpoint = 0;
    for (const RunStatus &status : resumed.statuses)
        from_checkpoint += status.fromCheckpoint ? 1 : 0;
    EXPECT_EQ(from_checkpoint, 2u);
    for (std::size_t i = 0; i < expected.runs.size(); ++i) {
        EXPECT_EQ(resumed.runs[i].counters.cycles,
                  expected.runs[i].counters.cycles)
            << i;
        EXPECT_EQ(resumed.runs[i].counters.delivered,
                  expected.runs[i].counters.delivered)
            << i;
    }
    std::remove(path.c_str());
}

// ------------------------------------- report-level byte identity

TEST(CheckpointResume, ResumedReportIsByteIdentical)
{
    const std::string path = scratchPath("report_resume");
    std::remove(path.c_str());
    Session session;

    // Plain report: no checkpointing at all.
    ReproReportOptions plain;
    plain.dynInsts = 2000;
    const std::string reference = generateReproReport(session, plain);

    // Same report while journaling: the journal must not perturb a
    // single byte.
    ReproReportOptions journaling = plain;
    journaling.checkpointPath = path;
    const std::string journaled =
        generateReproReport(session, journaling);
    EXPECT_EQ(journaled, reference);

    // Resumed report: every grid cell loads from the journal, and the
    // document is still byte-identical (the acceptance criterion for
    // `fetchsim_cli report --resume`).
    ReproReportOptions resuming = journaling;
    resuming.resume = true;
    SweepResult grid;
    const std::string resumed =
        generateReproReport(session, resuming, &grid);
    EXPECT_EQ(resumed, reference);

    std::size_t from_checkpoint = 0;
    for (const RunStatus &status : grid.statuses)
        from_checkpoint += status.fromCheckpoint ? 1 : 0;
    EXPECT_EQ(from_checkpoint, grid.statuses.size());
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace fetchsim
