/**
 * @file
 * Tests for Pettis-Hansen function placement and the set-associative
 * I-cache extension.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/icache.h"
#include "compiler/code_layout.h"
#include "compiler/function_layout.h"
#include "exec/executor.h"
#include "test_util.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

ProfileOptions
smallProfile()
{
    ProfileOptions options;
    options.instsPerInput = 20000;
    return options;
}

TEST(FunctionLayout, CallEdgeWeightsFollowProfile)
{
    Workload wl = test::callWorkload(3);
    EdgeProfile profile = collectProfile(wl, smallProfile());
    auto weights = callEdgeWeights(wl.program, profile);
    ASSERT_EQ(weights.size(), 2u);
    // main (0) calls callee (1) once per iteration.
    EXPECT_GT(weights[0][1], 0u);
    EXPECT_EQ(weights[1][0], 0u);
}

TEST(FunctionLayout, KeepsFunctionsContiguous)
{
    Workload wl = generateWorkload(benchmarkByName("li"));
    EdgeProfile profile = collectProfile(wl, smallProfile());
    placeFunctions(wl, profile);

    const Program &prog = wl.program;
    FuncId last = kNoFunc;
    std::set<FuncId> seen;
    for (BlockId id : prog.layoutOrder()) {
        const FuncId func = prog.block(id).func;
        if (func != last) {
            EXPECT_TRUE(seen.insert(func).second)
                << "function " << func << " split in layout";
            last = func;
        }
    }
    EXPECT_EQ(seen.size(), prog.numFunctions());
}

TEST(FunctionLayout, PreservesSemantics)
{
    Workload original = generateWorkload(benchmarkByName("sc"));
    Workload placed = generateWorkload(benchmarkByName("sc"));
    EdgeProfile profile = collectProfile(placed, smallProfile());
    placeFunctions(placed, profile);

    Executor ea(original, kEvalInput);
    Executor eb(placed, kEvalInput);
    DynInst da, db;
    for (int i = 0; i < 20000; ++i) {
        ea.next(da);
        eb.next(db);
        ASSERT_EQ(da.block, db.block) << "at " << i;
        ASSERT_EQ(da.si.op, db.si.op);
    }
}

TEST(FunctionLayout, MainChainLeadsTheImage)
{
    Workload wl = generateWorkload(benchmarkByName("compress"));
    EdgeProfile profile = collectProfile(wl, smallProfile());
    placeFunctions(wl, profile);
    const Program &prog = wl.program;
    // The first block in layout belongs to main's chain -- and since
    // chains start at their head function, to main itself.
    EXPECT_EQ(prog.block(prog.layoutOrder().front()).func,
              prog.mainFunction());
}

TEST(FunctionLayout, ChainsCaptureCallWeight)
{
    Workload wl = generateWorkload(benchmarkByName("gcc"));
    EdgeProfile profile = collectProfile(wl, smallProfile());
    FunctionLayoutStats stats = placeFunctions(wl, profile);
    EXPECT_EQ(stats.numFunctions, wl.program.numFunctions());
    EXPECT_LT(stats.chains, stats.numFunctions); // some merging
    EXPECT_GT(stats.adjacentCallWeight, 0u);
    EXPECT_LE(stats.adjacentCallWeight, stats.totalCallWeight);
}

TEST(FunctionLayout, ComposesWithTraceLayout)
{
    Workload wl = generateWorkload(benchmarkByName("eqntott"));
    EdgeProfile profile = collectProfile(wl, smallProfile());
    std::vector<Trace> traces = selectTraces(wl.program, profile);
    applyTraceLayout(wl, traces);
    placeFunctions(wl, profile);
    wl.program.validate();

    // Fall-through adjacency must survive function placement.
    const Program &prog = wl.program;
    const auto &order = prog.layoutOrder();
    for (std::size_t i = 0; i < order.size(); ++i) {
        const BasicBlock &bb = prog.block(order[i]);
        if (bb.term != TermKind::FallThrough &&
            bb.term != TermKind::CondBranch)
            continue;
        ASSERT_LT(i + 1, order.size());
        ASSERT_EQ(bb.fallThrough, order[i + 1]);
    }
}

TEST(ICacheAssoc, TwoWayAbsorbsDirectMappedConflict)
{
    // a and b conflict in a direct-mapped cache but coexist 2-way.
    ICache dm(1024, 16, 2, 1);
    ICache wa(1024, 16, 2, 2);
    const std::uint64_t a = 0x0;
    const std::uint64_t b = a + 1024;
    for (int round = 0; round < 4; ++round) {
        dm.access(a);
        dm.access(b);
        wa.access(a);
        wa.access(b);
    }
    EXPECT_EQ(dm.misses(), dm.accesses()); // ping-pong
    EXPECT_EQ(wa.misses(), 2u);            // cold misses only
}

TEST(ICacheAssoc, LruEvictsOldest)
{
    // 2-way, one set exercised with three conflicting blocks.
    ICache cache(32, 16, 2, 2); // 1 set, 2 ways
    const std::uint64_t a = 0x0, b = 0x10, c = 0x20;
    cache.access(a);
    cache.access(b);
    cache.access(a); // a most recent
    cache.access(c); // evicts b (LRU)
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(ICacheAssoc, GeometryAccountsForWays)
{
    ICache cache(32 * 1024, 16, 2, 4);
    EXPECT_EQ(cache.numWays(), 4);
    EXPECT_EQ(cache.numSets(), 512u);
}

TEST(ICacheAssocDeath, RejectsBadWays)
{
    EXPECT_EXIT(ICache(1024, 16, 2, 3),
                ::testing::ExitedWithCode(1), "associativity");
}

} // anonymous namespace
} // namespace fetchsim
