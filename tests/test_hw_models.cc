/**
 * @file
 * Tests for the structural datapath models (paper Figures 5, 6, 8)
 * and their agreement with the cycle-level walker's semantics.
 */

#include <gtest/gtest.h>

#include "fetch/hw_models.h"

namespace fetchsim
{
namespace
{

std::vector<FetchSlot>
slotsFromMask(int k2, std::uint32_t valid_mask)
{
    std::vector<FetchSlot> slots(static_cast<std::size_t>(k2));
    for (int i = 0; i < k2; ++i) {
        slots[static_cast<std::size_t>(i)].word =
            static_cast<std::uint32_t>(100 + i);
        slots[static_cast<std::size_t>(i)].valid =
            (valid_mask >> i) & 1;
    }
    return slots;
}

TEST(BtbBlockQuery, SequentialBlockWhenNoTakenBranch)
{
    Btb btb(1024, 4);
    BtbBlockQuery q = queryBtbBlock(btb, 0x1000, 4);
    EXPECT_EQ(q.validMask, 0xFu);
    EXPECT_EQ(q.firstTakenSlot, -1);
    EXPECT_TRUE(q.successorIsSequential);
    EXPECT_EQ(q.successorAddr, 0x1010u);
}

TEST(BtbBlockQuery, StartOffsetMasksEarlierSlots)
{
    Btb btb(1024, 4);
    BtbBlockQuery q = queryBtbBlock(btb, 0x1008, 4);
    EXPECT_EQ(q.validMask, 0b1100u);
    EXPECT_EQ(q.successorAddr, 0x1010u);
}

TEST(BtbBlockQuery, TakenBranchTerminatesValidRun)
{
    Btb btb(1024, 4);
    btb.update(0x1004, true, 0x2000);
    BtbBlockQuery q = queryBtbBlock(btb, 0x1000, 4);
    EXPECT_EQ(q.validMask, 0b0011u);
    EXPECT_EQ(q.firstTakenSlot, 1);
    EXPECT_FALSE(q.successorIsSequential);
    EXPECT_EQ(q.successorAddr, 0x2000u);
}

TEST(BtbBlockQuery, TakenBranchBeforeFetchSlotIgnored)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    BtbBlockQuery q = queryBtbBlock(btb, 0x1004, 4);
    EXPECT_EQ(q.validMask, 0b1110u);
    EXPECT_EQ(q.firstTakenSlot, -1);
    EXPECT_EQ(q.successorAddr, 0x1010u);
}

TEST(BtbBlockQuery, NotTakenCounterDoesNotTerminate)
{
    Btb btb(1024, 4);
    btb.update(0x1004, true, 0x2000);
    btb.update(0x1004, false, 0); // counter drops to not-taken
    BtbBlockQuery q = queryBtbBlock(btb, 0x1000, 4);
    EXPECT_EQ(q.validMask, 0xFu);
    EXPECT_EQ(q.firstTakenSlot, -1);
}

TEST(InterchangeSwitch, PassThroughWhenFetchInBank0)
{
    InterchangeSwitch sw(2);
    auto b0 = slotsFromMask(2, 0b11);
    auto b1 = slotsFromMask(2, 0b11);
    b1[0].word = 200;
    b1[1].word = 201;
    auto out = sw.apply(b0, b1, false);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].word, 100u);
    EXPECT_EQ(out[2].word, 200u);
}

TEST(InterchangeSwitch, SwapsWhenFetchInBank1)
{
    InterchangeSwitch sw(2);
    auto b0 = slotsFromMask(2, 0b11);
    auto b1 = slotsFromMask(2, 0b11);
    b1[0].word = 200;
    auto out = sw.apply(b0, b1, true);
    EXPECT_EQ(out[0].word, 200u);
    EXPECT_EQ(out[2].word, 100u);
}

TEST(InterchangeSwitch, PaperCostFormula)
{
    // Figure 6a: 64*k transmission gates, 2 gate delays.
    for (int k : {4, 8, 16}) {
        HwCost cost = InterchangeSwitch(k).cost();
        EXPECT_EQ(cost.transmissionGates,
                  64ull * static_cast<std::uint64_t>(k));
        EXPECT_EQ(cost.worstCaseDelay, 2);
    }
}

TEST(ValidSelect, PicksContiguousValidRun)
{
    ValidSelectLogic vs(4);
    // Fetch block valid from slot 2; successor valid 0..1.
    auto slots = slotsFromMask(8, 0b00111100);
    auto out = vs.apply(slots);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 102u);
    EXPECT_EQ(out[1], 103u);
    EXPECT_EQ(out[2], 104u);
    EXPECT_EQ(out[3], 105u);
}

TEST(ValidSelect, CapsAtBlockWidth)
{
    ValidSelectLogic vs(4);
    auto slots = slotsFromMask(8, 0xFF);
    EXPECT_EQ(vs.apply(slots).size(), 4u);
}

TEST(ValidSelect, EmptyMaskSelectsNothing)
{
    ValidSelectLogic vs(4);
    auto slots = slotsFromMask(8, 0);
    EXPECT_TRUE(vs.apply(slots).empty());
}

TEST(CollapsingLogic, RemovesScatteredGaps)
{
    CollapsingBufferLogic cb(4, CollapsingBufferLogic::Impl::Crossbar);
    // Valid slots 0, 3, 5, 6 -- gaps inside the run (intra-block
    // branches) get collapsed, unlike valid select's contiguous run.
    auto slots = slotsFromMask(8, 0b01101001);
    auto out = cb.apply(slots);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 100u);
    EXPECT_EQ(out[1], 103u);
    EXPECT_EQ(out[2], 105u);
    EXPECT_EQ(out[3], 106u);
}

TEST(CollapsingLogic, ShifterAndCrossbarAgreeFunctionally)
{
    CollapsingBufferLogic sh(4, CollapsingBufferLogic::Impl::Shifter);
    CollapsingBufferLogic xb(4, CollapsingBufferLogic::Impl::Crossbar);
    for (std::uint32_t mask = 0; mask < 256; ++mask) {
        auto slots = slotsFromMask(8, mask);
        ASSERT_EQ(sh.apply(slots), xb.apply(slots)) << mask;
    }
}

TEST(CollapsingLogic, PaperCostFormulas)
{
    // Figure 8a: 64k latches, 64k-32 transmission gates.
    HwCost sh = CollapsingBufferLogic(
                    4, CollapsingBufferLogic::Impl::Shifter)
                    .cost();
    EXPECT_EQ(sh.latches, 256u);
    EXPECT_EQ(sh.transmissionGates, 224u);
    EXPECT_EQ(sh.bestCaseDelay, 1);
    // lg(4)-1 = 1 latch delay worst case for P14.
    EXPECT_EQ(sh.worstCaseDelay, 1);

    // Figure 8b: 2k demuxes, ~1 gate + bus delay.
    HwCost xb = CollapsingBufferLogic(
                    8, CollapsingBufferLogic::Impl::Crossbar)
                    .cost();
    EXPECT_EQ(xb.muxes, 16u);
    EXPECT_EQ(xb.bestCaseDelay, 1);
}

TEST(CollapsingLogic, ShifterWorstCaseGrowsWithWidth)
{
    HwCost k16 = CollapsingBufferLogic(
                     16, CollapsingBufferLogic::Impl::Shifter)
                     .cost();
    EXPECT_EQ(k16.worstCaseDelay, 3); // lg(16)-1
}

} // anonymous namespace
} // namespace fetchsim
