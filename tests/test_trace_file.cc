/**
 * @file
 * Tests for the binary trace-file substrate: round-trip fidelity,
 * bounded replay, and the headline property that a trace-driven
 * Processor run is cycle-identical to the live-executor run it was
 * recorded from (the paper's spike-trace workflow).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/processor.h"
#include "exec/trace_file.h"
#include "test_util.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

/** Unique-ish temp path per test. */
std::string
tempTracePath(const char *tag)
{
    return std::string("/tmp/fetchsim_test_") + tag + ".trace";
}

const Workload &
compressWorkload()
{
    static const Workload wl =
        generateWorkload(benchmarkByName("compress"));
    return wl;
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        if (!path_.empty())
            std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripsEveryField)
{
    path_ = tempTracePath("roundtrip");
    Workload wl = test::hammockWorkload(2, 3, 0.6);
    Executor exec(wl, kEvalInput);

    std::vector<DynInst> original;
    {
        TraceWriter writer(path_);
        DynInst di;
        for (int i = 0; i < 500; ++i) {
            exec.next(di);
            original.push_back(di);
            writer.append(di);
        }
    }

    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 500u);
    DynInst di;
    for (const DynInst &expect : original) {
        ASSERT_TRUE(reader.next(di));
        ASSERT_EQ(di.pc, expect.pc);
        ASSERT_EQ(di.si.op, expect.si.op);
        ASSERT_EQ(di.si.dest, expect.si.dest);
        ASSERT_EQ(di.si.src1, expect.si.src1);
        ASSERT_EQ(di.si.src2, expect.si.src2);
        ASSERT_EQ(di.si.imm, expect.si.imm);
        ASSERT_EQ(di.taken, expect.taken);
        ASSERT_EQ(di.actualTarget, expect.actualTarget);
        ASSERT_EQ(di.seq, expect.seq);
    }
    EXPECT_FALSE(reader.next(di)); // bounded
}

TEST_F(TraceFileTest, RewindReplaysFromStart)
{
    path_ = tempTracePath("rewind");
    Workload wl = test::straightLineWorkload(5);
    Executor exec(wl, 0);
    EXPECT_EQ(recordTrace(exec, path_, 100), 100u);

    TraceReader reader(path_);
    DynInst first;
    ASSERT_TRUE(reader.next(first));
    while (reader.consumed() < reader.count()) {
        DynInst di;
        ASSERT_TRUE(reader.next(di));
    }
    reader.rewind();
    DynInst again;
    ASSERT_TRUE(reader.next(again));
    EXPECT_EQ(again.pc, first.pc);
}

TEST_F(TraceFileTest, RejectsGarbageFiles)
{
    path_ = tempTracePath("garbage");
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    std::fputs("definitely not a trace file, sorry", f);
    std::fclose(f);
    try {
        TraceReader reader(path_);
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
        EXPECT_NE(std::string(e.what()).find("not a fetchsim trace"),
                  std::string::npos);
    }
}

TEST_F(TraceFileTest, MissingFileIsAnIoError)
{
    try {
        TraceReader reader("/nonexistent/nope.trace");
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos);
    }
}

TEST_F(TraceFileTest, HeaderCarriesTheContentHash)
{
    path_ = tempTracePath("hash");
    Workload wl = test::hammockWorkload(2, 3, 0.6);
    Executor exec(wl, kEvalInput);

    std::uint64_t written_hash = 0;
    {
        TraceWriter writer(path_);
        DynInst di;
        for (int i = 0; i < 300; ++i) {
            exec.next(di);
            writer.append(di);
        }
        writer.close();
        written_hash = writer.contentHash();
    }
    EXPECT_NE(written_hash, kTraceHashOffset); // 300 records hashed

    TraceReader reader(path_);
    EXPECT_EQ(reader.version(), kTraceVersion);
    EXPECT_EQ(reader.contentHash(), written_hash);

    // Draining the whole stream revalidates the hash (no throw).
    DynInst di;
    while (reader.next(di)) {
    }
    EXPECT_EQ(reader.consumed(), 300u);
}

TEST_F(TraceFileTest, DetectsCorruptedRecords)
{
    path_ = tempTracePath("corrupt");
    Workload wl = test::straightLineWorkload(5);
    Executor exec(wl, 0);
    recordTrace(exec, path_, 50);

    // Flip one byte in the middle of the record payload.
    std::FILE *f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24 + 25 * 32 + 3, SEEK_SET);
    std::fputc(0x5a, f);
    std::fclose(f);

    TraceReader reader(path_);
    DynInst di;
    EXPECT_THROW(
        {
            while (reader.next(di)) {
            }
        },
        SimException);
}

TEST_F(TraceFileTest, TruncatedFileIsAnIoError)
{
    path_ = tempTracePath("truncated");
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    std::fputs("FSTR", f); // valid magic, then nothing
    std::fclose(f);
    try {
        TraceReader reader(path_);
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
    }
}

TEST_F(TraceFileTest, ReadsVersion1Traces)
{
    // v1 files (16-byte header, no content hash) predate the replay
    // cache; the reader must still consume them, skipping hash
    // verification.
    path_ = tempTracePath("v1");
    Workload wl = test::straightLineWorkload(5);
    Executor exec(wl, 0);
    recordTrace(exec, path_, 40);

    // Demote the v2 file to v1: drop the hash word from the header
    // and shift the records up by 8 bytes.
    std::FILE *in = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in),
              bytes.size());
    std::fclose(in);
    const std::uint32_t v1 = 1;
    std::memcpy(bytes.data() + 4, &v1, sizeof(v1));
    std::FILE *out = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, 16, out);             // v1 header
    std::fwrite(bytes.data() + 24, 1, bytes.size() - 24, out);
    std::fclose(out);

    TraceReader reader(path_);
    EXPECT_EQ(reader.version(), 1u);
    EXPECT_EQ(reader.count(), 40u);
    DynInst di;
    std::uint64_t read = 0;
    while (reader.next(di))
        ++read;
    EXPECT_EQ(read, 40u);
}

TEST_F(TraceFileTest, TraceDrivenRunMatchesLiveRun)
{
    // Record 30k instructions of a real benchmark; the trace-driven
    // Processor must produce cycle-identical results to the live
    // one, for several schemes.
    path_ = tempTracePath("equiv");
    const Workload &wl = compressWorkload();
    {
        Executor exec(wl, kEvalInput);
        recordTrace(exec, path_, 30000);
    }

    for (SchemeKind scheme :
         {SchemeKind::Sequential, SchemeKind::CollapsingBuffer}) {
        MachineConfig cfg = makeP18();
        Processor live(wl, kEvalInput, cfg,
                       makeFetchMechanism(scheme, cfg));
        live.run(25000);

        TraceReader reader(path_);
        Processor replay(reader, cfg,
                         makeFetchMechanism(scheme, cfg));
        replay.run(25000);

        EXPECT_EQ(live.counters().cycles, replay.counters().cycles)
            << schemeName(scheme);
        EXPECT_EQ(live.counters().delivered,
                  replay.counters().delivered);
        EXPECT_EQ(live.counters().mispredicts,
                  replay.counters().mispredicts);
        EXPECT_EQ(live.counters().icacheMisses,
                  replay.counters().icacheMisses);
    }
}

TEST_F(TraceFileTest, ExhaustedTraceStallsGracefully)
{
    // A processor fed a short trace must not deadlock-panic before
    // retiring what the trace contains.
    path_ = tempTracePath("short");
    Workload wl = test::straightLineWorkload(7);
    Executor exec(wl, 0);
    recordTrace(exec, path_, 600);

    TraceReader reader(path_);
    MachineConfig cfg = makeP14();
    Processor proc(reader, cfg,
                   makeFetchMechanism(SchemeKind::Perfect, cfg));
    proc.run(600);
    EXPECT_GE(proc.counters().retired, 600u);
}

} // anonymous namespace
} // namespace fetchsim
