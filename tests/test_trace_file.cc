/**
 * @file
 * Tests for the binary trace-file substrate: round-trip fidelity,
 * bounded replay, and the headline property that a trace-driven
 * Processor run is cycle-identical to the live-executor run it was
 * recorded from (the paper's spike-trace workflow).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/processor.h"
#include "exec/trace_file.h"
#include "test_util.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

/** Unique-ish temp path per test. */
std::string
tempTracePath(const char *tag)
{
    return std::string("/tmp/fetchsim_test_") + tag + ".trace";
}

const Workload &
compressWorkload()
{
    static const Workload wl =
        generateWorkload(benchmarkByName("compress"));
    return wl;
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        if (!path_.empty())
            std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripsEveryField)
{
    path_ = tempTracePath("roundtrip");
    Workload wl = test::hammockWorkload(2, 3, 0.6);
    Executor exec(wl, kEvalInput);

    std::vector<DynInst> original;
    {
        TraceWriter writer(path_);
        DynInst di;
        for (int i = 0; i < 500; ++i) {
            exec.next(di);
            original.push_back(di);
            writer.append(di);
        }
    }

    TraceReader reader(path_);
    EXPECT_EQ(reader.count(), 500u);
    DynInst di;
    for (const DynInst &expect : original) {
        ASSERT_TRUE(reader.next(di));
        ASSERT_EQ(di.pc, expect.pc);
        ASSERT_EQ(di.si.op, expect.si.op);
        ASSERT_EQ(di.si.dest, expect.si.dest);
        ASSERT_EQ(di.si.src1, expect.si.src1);
        ASSERT_EQ(di.si.src2, expect.si.src2);
        ASSERT_EQ(di.si.imm, expect.si.imm);
        ASSERT_EQ(di.taken, expect.taken);
        ASSERT_EQ(di.actualTarget, expect.actualTarget);
        ASSERT_EQ(di.seq, expect.seq);
    }
    EXPECT_FALSE(reader.next(di)); // bounded
}

TEST_F(TraceFileTest, RewindReplaysFromStart)
{
    path_ = tempTracePath("rewind");
    Workload wl = test::straightLineWorkload(5);
    Executor exec(wl, 0);
    EXPECT_EQ(recordTrace(exec, path_, 100), 100u);

    TraceReader reader(path_);
    DynInst first;
    ASSERT_TRUE(reader.next(first));
    while (reader.consumed() < reader.count()) {
        DynInst di;
        ASSERT_TRUE(reader.next(di));
    }
    reader.rewind();
    DynInst again;
    ASSERT_TRUE(reader.next(again));
    EXPECT_EQ(again.pc, first.pc);
}

TEST_F(TraceFileTest, RejectsGarbageFiles)
{
    path_ = tempTracePath("garbage");
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    std::fputs("definitely not a trace file, sorry", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader reader(path_),
                ::testing::ExitedWithCode(1), "not a fetchsim trace");
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader reader("/nonexistent/nope.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST_F(TraceFileTest, TraceDrivenRunMatchesLiveRun)
{
    // Record 30k instructions of a real benchmark; the trace-driven
    // Processor must produce cycle-identical results to the live
    // one, for several schemes.
    path_ = tempTracePath("equiv");
    const Workload &wl = compressWorkload();
    {
        Executor exec(wl, kEvalInput);
        recordTrace(exec, path_, 30000);
    }

    for (SchemeKind scheme :
         {SchemeKind::Sequential, SchemeKind::CollapsingBuffer}) {
        MachineConfig cfg = makeP18();
        Processor live(wl, kEvalInput, cfg,
                       makeFetchMechanism(scheme, cfg));
        live.run(25000);

        TraceReader reader(path_);
        Processor replay(reader, cfg,
                         makeFetchMechanism(scheme, cfg));
        replay.run(25000);

        EXPECT_EQ(live.counters().cycles, replay.counters().cycles)
            << schemeName(scheme);
        EXPECT_EQ(live.counters().delivered,
                  replay.counters().delivered);
        EXPECT_EQ(live.counters().mispredicts,
                  replay.counters().mispredicts);
        EXPECT_EQ(live.counters().icacheMisses,
                  replay.counters().icacheMisses);
    }
}

TEST_F(TraceFileTest, ExhaustedTraceStallsGracefully)
{
    // A processor fed a short trace must not deadlock-panic before
    // retiring what the trace contains.
    path_ = tempTracePath("short");
    Workload wl = test::straightLineWorkload(7);
    Executor exec(wl, 0);
    recordTrace(exec, path_, 600);

    TraceReader reader(path_);
    MachineConfig cfg = makeP14();
    Processor proc(reader, cfg,
                   makeFetchMechanism(SchemeKind::Perfect, cfg));
    proc.run(600);
    EXPECT_GE(proc.counters().retired, 600u);
}

} // anonymous namespace
} // namespace fetchsim
