/**
 * @file
 * Tests for the CFG interpreter (execution engine).
 */

#include <gtest/gtest.h>

#include <map>

#include "exec/executor.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

std::vector<DynInst>
runN(const Workload &wl, int n, int input = kEvalInput)
{
    Executor exec(wl, input);
    std::vector<DynInst> out;
    DynInst di;
    for (int i = 0; i < n; ++i) {
        EXPECT_TRUE(exec.next(di));
        out.push_back(di);
    }
    return out;
}

TEST(Executor, StraightLineSequentialAddresses)
{
    Workload wl = test::straightLineWorkload(5);
    auto insts = runN(wl, 6);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(insts[static_cast<std::size_t>(i)].pc,
                  kDefaultCodeBase + static_cast<std::uint64_t>(i) * 4);
        EXPECT_FALSE(insts[static_cast<std::size_t>(i)].isControl());
    }
    EXPECT_EQ(insts[5].si.op, OpClass::Return);
    EXPECT_TRUE(insts[5].taken);
}

TEST(Executor, MainRestartsAfterReturn)
{
    Workload wl = test::straightLineWorkload(2);
    auto insts = runN(wl, 7); // two full iterations + 1
    // Iteration length is 3 (2 alu + ret); pcs repeat.
    EXPECT_EQ(insts[0].pc, insts[3].pc);
    EXPECT_EQ(insts[2].si.op, OpClass::Return);
    EXPECT_EQ(insts[2].actualTarget, kDefaultCodeBase);
    EXPECT_EQ(insts[6].pc, insts[0].pc);
}

TEST(Executor, SequenceNumbersMonotone)
{
    Workload wl = test::loopWorkload(3, 5);
    auto insts = runN(wl, 50);
    for (std::size_t i = 0; i < insts.size(); ++i)
        EXPECT_EQ(insts[i].seq, i);
}

TEST(Executor, LoopIteratesWithExactTrip)
{
    Workload wl = test::loopWorkload(2, 8);
    // Count latch outcomes over several loop entries: per entry the
    // latch is taken (trip-1) times then not-taken once.
    Executor exec(wl, 0);
    DynInst di;
    int taken_run = 0;
    std::vector<int> runs;
    for (int i = 0; i < 400; ++i) {
        exec.next(di);
        if (!di.isCondBranch())
            continue;
        if (di.taken) {
            ++taken_run;
        } else {
            runs.push_back(taken_run);
            taken_run = 0;
        }
    }
    ASSERT_GE(runs.size(), 2u);
    // All complete runs have the same (jittered) trip.
    for (std::size_t i = 1; i < runs.size(); ++i)
        EXPECT_EQ(runs[i], runs[0]);
    EXPECT_GE(runs[0], 5);
    EXPECT_LE(runs[0], 10);
}

TEST(Executor, LoopBranchTargetsHeader)
{
    Workload wl = test::loopWorkload(1, 4);
    Executor exec(wl, kEvalInput);
    DynInst di;
    const std::uint64_t header_addr = wl.program.block(1).address;
    for (int i = 0; i < 60; ++i) {
        exec.next(di);
        if (di.isCondBranch() && di.taken)
            EXPECT_EQ(di.actualTarget, header_addr);
    }
}

TEST(Executor, HammockTakenSkipsClause)
{
    Workload wl = test::hammockWorkload(1, 3, 1.0); // always taken
    Executor exec(wl, kEvalInput);
    DynInst di;
    const std::uint64_t clause_addr = wl.program.block(1).address;
    for (int i = 0; i < 40; ++i) {
        exec.next(di);
        EXPECT_NE(di.pc, clause_addr) << "clause must never execute";
    }
}

TEST(Executor, HammockNotTakenRunsClause)
{
    Workload wl = test::hammockWorkload(1, 3, 0.0); // never taken
    Executor exec(wl, kEvalInput);
    DynInst di;
    const std::uint64_t clause_addr = wl.program.block(1).address;
    bool saw_clause = false;
    for (int i = 0; i < 40; ++i) {
        exec.next(di);
        saw_clause |= di.pc == clause_addr;
        if (di.isCondBranch())
            EXPECT_FALSE(di.taken);
    }
    EXPECT_TRUE(saw_clause);
}

TEST(Executor, CallAndReturnLinkCorrectly)
{
    Workload wl = test::callWorkload(2);
    Executor exec(wl, kEvalInput);
    const Program &prog = wl.program;
    DynInst di;

    // m0: alu, call -> callee entry.
    exec.next(di);
    exec.next(di);
    ASSERT_EQ(di.si.op, OpClass::Call);
    EXPECT_TRUE(di.taken);
    EXPECT_EQ(di.actualTarget, prog.block(2).address);
    EXPECT_EQ(exec.callDepth(), 1u);

    // callee body then return to m1.
    exec.next(di);
    exec.next(di);
    exec.next(di);
    ASSERT_EQ(di.si.op, OpClass::Return);
    EXPECT_EQ(di.actualTarget, prog.block(1).address);
    EXPECT_EQ(exec.callDepth(), 0u);
}

TEST(Executor, CondBranchJumpSemantics)
{
    // Build: head with CondBranchJump; taken -> blockT; jump -> blockJ.
    Workload wl(test::tinySpec("cbj"));
    Program &prog = wl.program;
    FuncId fn = prog.addFunction("main");
    prog.setMainFunction(fn);
    BlockId head = prog.addBlock(fn);
    BlockId t = prog.addBlock(fn);
    BlockId j = prog.addBlock(fn);
    prog.function(fn).entry = head;

    prog.block(head).body.push_back(makeCondBranch(1, 2));
    prog.block(head).body.push_back(makeJump());
    prog.block(head).term = TermKind::CondBranchJump;
    prog.block(head).takenTarget = t;
    prog.block(head).fallThrough = j;
    BranchBehavior beh;
    beh.kind = BehaviorKind::Alternating;
    beh.period = 1;
    prog.block(head).behavior = wl.behaviors.add(beh);

    prog.block(t).body.push_back(makeReturn());
    prog.block(t).term = TermKind::Return;
    prog.block(j).body.push_back(makeReturn());
    prog.block(j).term = TermKind::Return;
    assignAddresses(prog);
    prog.validate();

    Executor exec(wl, 0);
    DynInst di;
    bool saw_taken_path = false, saw_jump_path = false;
    for (int i = 0; i < 40; ++i) {
        exec.next(di);
        if (di.si.op == OpClass::CondBranch && di.taken) {
            EXPECT_EQ(di.actualTarget, prog.block(t).address);
            saw_taken_path = true;
        }
        if (di.si.op == OpClass::Jump) {
            // Jump executes only on the not-taken path.
            EXPECT_TRUE(di.taken);
            EXPECT_EQ(di.actualTarget, prog.block(j).address);
            saw_jump_path = true;
        }
    }
    EXPECT_TRUE(saw_taken_path);
    EXPECT_TRUE(saw_jump_path);
}

TEST(Executor, EmptyBlocksAreSkipped)
{
    Workload wl(test::tinySpec("empty"));
    Program &prog = wl.program;
    FuncId fn = prog.addFunction("main");
    prog.setMainFunction(fn);
    BlockId a = prog.addBlock(fn);
    BlockId empty = prog.addBlock(fn);
    BlockId b = prog.addBlock(fn);
    prog.function(fn).entry = a;
    prog.block(a).body.push_back(makeIntAlu(1, 1, 2));
    prog.block(a).term = TermKind::FallThrough;
    prog.block(a).fallThrough = empty;
    prog.block(empty).term = TermKind::FallThrough;
    prog.block(empty).fallThrough = b;
    prog.block(b).body.push_back(makeReturn());
    prog.block(b).term = TermKind::Return;
    assignAddresses(prog);
    prog.validate();

    Executor exec(wl, 0);
    DynInst di;
    exec.next(di);
    EXPECT_EQ(di.block, a);
    exec.next(di);
    EXPECT_EQ(di.block, b); // empty block contributed nothing
    EXPECT_EQ(di.si.op, OpClass::Return);
}

TEST(Executor, SameInputIsReproducible)
{
    Workload wl = test::hammockWorkload(2, 2, 0.5);
    auto a = runN(wl, 200, 3);
    auto b = runN(wl, 200, 3);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc);
        ASSERT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Executor, DifferentInputsDiverge)
{
    Workload wl = test::hammockWorkload(2, 2, 0.5);
    auto a = runN(wl, 500, 0);
    auto b = runN(wl, 500, kEvalInput);
    bool diverged = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        diverged |= a[i].pc != b[i].pc;
    EXPECT_TRUE(diverged);
}

/** Observer counting, checked against direct stream inspection. */
class CountingObserver : public ExecObserver
{
  public:
    void onBlock(BlockId block) override { ++blocks[block]; }
    void
    onCondBranch(BlockId block, bool taken) override
    {
        if (taken)
            ++taken_count[block];
        else
            ++not_taken[block];
    }
    std::map<BlockId, int> blocks, taken_count, not_taken;
};

TEST(Executor, ObserverCountsMatchStream)
{
    Workload wl = test::loopWorkload(2, 6);
    Executor exec(wl, kEvalInput);
    CountingObserver obs;
    exec.setObserver(&obs);
    DynInst di;
    int cond_taken = 0, cond_not = 0;
    for (int i = 0; i < 300; ++i) {
        exec.next(di);
        if (di.isCondBranch()) {
            if (di.taken)
                ++cond_taken;
            else
                ++cond_not;
        }
    }
    EXPECT_EQ(obs.taken_count[1], cond_taken);
    EXPECT_EQ(obs.not_taken[1], cond_not);
    EXPECT_GT(obs.blocks[1], 0);
}

} // anonymous namespace
} // namespace fetchsim
