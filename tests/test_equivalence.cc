/**
 * @file
 * Cross-validation between the two independent models of the fetch
 * datapath: the cycle-level group-formation walk (fetch/walker.h)
 * and the structural hardware models (fetch/hw_models.h).  On
 * randomized BTB states and predicted paths, both must agree on what
 * one cycle can align.
 */

#include <gtest/gtest.h>

#include "fetch/hw_models.h"
#include "fetch/walker.h"
#include "test_util.h"
#include "workload/rng.h"

namespace fetchsim
{
namespace
{

constexpr std::uint64_t kBase = 0x20000;
constexpr int kInstsPerBlock = 4;
constexpr std::uint64_t kBlockBytes = kInstsPerBlock * kInstBytes;

/**
 * Property: when fetch starts at an address with NO predicted-taken
 * branch ahead in the fetch block, the walker's sequential-scheme
 * group size equals the number of valid bits the interleaved-BTB
 * block query produces (both count "slots from the fetch address to
 * the earlier of block end / first predicted-taken slot").
 */
TEST(WalkerVsHwModels, SequentialGroupMatchesBtbValidBits)
{
    Rng rng(777);
    for (int round = 0; round < 500; ++round) {
        PredictorSuite suite(1024, kInstsPerBlock);
        ICache icache(32 * 1024, kBlockBytes, 2);
        MachineConfig cfg = makeP14();
        cfg.issueRate = kInstsPerBlock; // one block per group
        cfg.blockBytes = kBlockBytes;
        cfg.specDepth = 8;

        // Random block content: each slot is either a plain inst or
        // a conditional branch with a random trained direction.
        const std::uint64_t block = kBase + rng.uniform(16) * kBlockBytes;
        icache.access(block);

        struct Slot
        {
            bool is_branch;
            bool pred_taken;
        };
        std::vector<Slot> slots(kInstsPerBlock);
        for (auto &slot : slots) {
            slot.is_branch = rng.bernoulli(0.4);
            slot.pred_taken = slot.is_branch && rng.bernoulli(0.5);
        }

        const int start =
            static_cast<int>(rng.uniform(kInstsPerBlock));
        std::vector<test::StreamSpec> specs;
        for (int i = start; i < kInstsPerBlock; ++i) {
            const std::uint64_t pc =
                block + static_cast<std::uint64_t>(i) * kInstBytes;
            // Targets land far away in an inter-block location so
            // intra-block handling never triggers for sequential.
            const std::uint64_t target = kBase + 64 * kBlockBytes;
            if (slots[static_cast<std::size_t>(i)].is_branch) {
                const bool taken =
                    slots[static_cast<std::size_t>(i)].pred_taken;
                if (taken)
                    suite.btb().update(pc, true, target);
                // The actual outcome matches the prediction so the
                // walk is never cut short by a mispredict.
                specs.push_back({pc, OpClass::CondBranch, taken,
                                 taken ? target : 0});
                if (taken)
                    break; // stream follows the taken path away
            } else {
                specs.push_back({pc, OpClass::IntAlu, false, 0});
            }
        }
        if (specs.empty())
            continue;
        // Continue the stream into the far block so the walker is
        // never starved.
        for (int i = 0; i < 4; ++i) {
            specs.push_back({kBase + 64 * kBlockBytes +
                                 static_cast<std::uint64_t>(i) * 4,
                             OpClass::IntAlu, false, 0});
        }

        auto stream = test::makeStream(specs);
        FetchContext ctx;
        ctx.stream = stream.data();
        ctx.streamLen = static_cast<int>(stream.size());
        ctx.predictor = &suite;
        ctx.icache = &icache;
        ctx.cfg = &cfg;
        ctx.specHeadroom = cfg.specDepth;
        ctx.windowSpace = 64;

        // Hardware side: block query valid bits from the fetch slot.
        BtbBlockQuery query = queryBtbBlock(
            suite.btb(),
            block + static_cast<std::uint64_t>(start) * kInstBytes,
            kInstsPerBlock);
        int valid_bits = 0;
        for (int i = 0; i < kInstsPerBlock; ++i)
            valid_bits += (query.validMask >> i) & 1;

        // Walker side.
        FetchOutcome out =
            runWalk(rulesFor(SchemeKind::Sequential), ctx);

        ASSERT_EQ(out.delivered, valid_bits)
            << "round " << round << " start " << start;
    }
}

/**
 * Property: the collapse network's output size equals the walker's
 * collapsing-buffer group size when the group is built from two
 * warmed blocks with intra-block forward collapses only.
 */
TEST(WalkerVsHwModels, CollapseNetworkAgreesOnCompaction)
{
    CollapsingBufferLogic logic(
        4, CollapsingBufferLogic::Impl::Crossbar);
    // Any mask: the network keeps exactly the valid words, up to k.
    Rng rng(778);
    for (int round = 0; round < 200; ++round) {
        const auto mask =
            static_cast<std::uint32_t>(rng.uniform(256));
        std::vector<FetchSlot> slots(8);
        int expected = 0;
        for (int i = 0; i < 8; ++i) {
            slots[static_cast<std::size_t>(i)].word =
                static_cast<std::uint32_t>(i);
            const bool valid = (mask >> i) & 1;
            slots[static_cast<std::size_t>(i)].valid = valid;
            if (valid && expected < 4)
                ++expected;
        }
        ASSERT_EQ(static_cast<int>(logic.apply(slots).size()),
                  expected);
    }
}

/**
 * Property: valid-select can never deliver more than the collapse
 * network from the same slots (the collapsing buffer dominates the
 * simpler datapath), and both respect the block-width cap.
 */
TEST(WalkerVsHwModels, CollapseDominatesValidSelect)
{
    ValidSelectLogic vs(4);
    CollapsingBufferLogic cb(4,
                             CollapsingBufferLogic::Impl::Crossbar);
    Rng rng(779);
    for (int round = 0; round < 200; ++round) {
        std::vector<FetchSlot> slots(8);
        for (auto &slot : slots) {
            slot.word = static_cast<std::uint32_t>(rng.uniform(100));
            slot.valid = rng.bernoulli(0.6);
        }
        const auto from_vs = vs.apply(slots).size();
        const auto from_cb = cb.apply(slots).size();
        ASSERT_LE(from_vs, from_cb);
        ASSERT_LE(from_cb, 4u);
    }
}

} // anonymous namespace
} // namespace fetchsim
