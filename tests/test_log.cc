/**
 * @file
 * Unit tests for the structured logger (stats/log.h): level/format
 * parsing, logfmt and JSONL line schemas, threshold gating, the
 * warn()/inform() compatibility shims, FETCHSIM_LOG-style spec
 * application, and the no-interleaving guarantee that motivated the
 * rewrite (parallel sweep workers corrupting stderr).
 *
 * The tests drive the process-wide Logger through its test hooks
 * (setCapture / setTimestamps) and restore every global setting they
 * touch, so ordering between tests -- and with the rest of the suite,
 * which may warn() -- does not matter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stats/log.h"

namespace fetchsim
{
namespace
{

/**
 * RAII harness: capture logger output into a string with timestamps
 * suppressed, restoring the previous level/format/sink on exit.
 */
class LogCapture
{
  public:
    explicit LogCapture(LogLevel level = LogLevel::Debug,
                        LogFormat format = LogFormat::Text)
        : saved_level_(Logger::level()),
          saved_format_(Logger::instance().format())
    {
        Logger &logger = Logger::instance();
        logger.setLevel(level);
        logger.setFormat(format);
        logger.setTimestamps(false);
        logger.setCapture(&text_);
    }

    ~LogCapture()
    {
        Logger &logger = Logger::instance();
        logger.setCapture(nullptr);
        logger.setTimestamps(true);
        logger.setFormat(saved_format_);
        logger.setLevel(saved_level_);
    }

    const std::string &text() const { return text_; }

    std::vector<std::string> lines() const
    {
        std::vector<std::string> out;
        std::istringstream is(text_);
        std::string line;
        while (std::getline(is, line))
            out.push_back(line);
        return out;
    }

  private:
    std::string text_;
    LogLevel saved_level_;
    LogFormat saved_format_;
};

// -------------------------------------------------------------- parsing

TEST(LogParse, LevelNamesRoundTrip)
{
    EXPECT_EQ(parseLogLevel("debug").value(), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("info").value(), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("warn").value(), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning").value(), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error").value(), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("off").value(), LogLevel::Off);
    EXPECT_EQ(parseLogLevel("none").value(), LogLevel::Off);
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error,
                           LogLevel::Off})
        EXPECT_EQ(parseLogLevel(logLevelName(level)).value(), level);
}

TEST(LogParse, BadLevelIsConfigError)
{
    Expected<LogLevel> bad = parseLogLevel("verbose");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().kind, ErrorKind::Config);
    EXPECT_NE(bad.error().message.find("verbose"), std::string::npos);
}

TEST(LogParse, FormatNamesRoundTrip)
{
    EXPECT_EQ(parseLogFormat("text").value(), LogFormat::Text);
    EXPECT_EQ(parseLogFormat("logfmt").value(), LogFormat::Text);
    EXPECT_EQ(parseLogFormat("json").value(), LogFormat::Jsonl);
    EXPECT_EQ(parseLogFormat("jsonl").value(), LogFormat::Jsonl);
    EXPECT_FALSE(parseLogFormat("xml").ok());
    EXPECT_EQ(parseLogFormat("xml").error().kind, ErrorKind::Config);
}

// ------------------------------------------------------------ LogField

TEST(LogField, ConstructorFamilyPicksRepresentation)
{
    LogField s("k", std::string("v"));
    EXPECT_TRUE(s.quoted);
    LogField c("k", "literal");
    EXPECT_TRUE(c.quoted);
    EXPECT_EQ(c.value, "literal");
    LogField i("k", 42);
    EXPECT_FALSE(i.quoted);
    EXPECT_EQ(i.value, "42");
    LogField u("k", std::uint64_t{18446744073709551615ull});
    EXPECT_EQ(u.value, "18446744073709551615");
    LogField b("k", true);
    EXPECT_FALSE(b.quoted);
    EXPECT_EQ(b.value, "true");
    LogField f("k", 2.5);
    EXPECT_FALSE(f.quoted);
    EXPECT_EQ(f.value, "2.5");
}

// ------------------------------------------------------------- schemas

TEST(LogLine, TextSchemaExactBytes)
{
    LogCapture capture(LogLevel::Debug, LogFormat::Text);
    LOG_INFO("job.submitted",
             {{"job", 7}, {"state", "queued"}, {"ok", true}});
    EXPECT_EQ(capture.text(),
              "level=info msg=\"job.submitted\" job=7 "
              "state=\"queued\" ok=true\n");
}

TEST(LogLine, TextQuotesAndEscapesWhenNeeded)
{
    LogCapture capture(LogLevel::Debug, LogFormat::Text);
    LOG_WARN("disk full", {{"path", "/tmp/a b"}, {"note", "x=\"1\""}});
    EXPECT_EQ(capture.text(),
              "level=warn msg=\"disk full\" path=\"/tmp/a b\" "
              "note=\"x=\\\"1\\\"\"\n");
}

TEST(LogLine, JsonlSchemaExactBytes)
{
    LogCapture capture(LogLevel::Debug, LogFormat::Jsonl);
    LOG_ERROR("cell.failed",
              {{"cell", 3}, {"error", "watchdog \"trip\""}});
    EXPECT_EQ(capture.text(),
              "{\"level\":\"error\",\"msg\":\"cell.failed\","
              "\"cell\":3,\"error\":\"watchdog \\\"trip\\\"\"}\n");
}

TEST(LogLine, JsonlLinesParseAsJsonObjects)
{
    LogCapture capture(LogLevel::Debug, LogFormat::Jsonl);
    LOG_INFO("newline\nmessage", {{"tab", "a\tb"}});
    LOG_DEBUG("plain");
    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &line : lines) {
        // Structural sanity: braces balance, no raw control bytes.
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        for (char c : line)
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
    EXPECT_NE(lines[0].find("\"msg\":\"newline\\nmessage\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"tab\":\"a\\tb\""), std::string::npos);
}

TEST(LogLine, TimestampsOnByDefaultAndWellFormed)
{
    LogCapture capture;
    Logger::instance().setTimestamps(true);
    LOG_INFO("stamped");
    Logger::instance().setTimestamps(false);
    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 1u);
    // ts=YYYY-MM-DDTHH:MM:SS.UUUUUUZ level=...
    ASSERT_EQ(lines[0].rfind("ts=", 0), 0u);
    EXPECT_EQ(lines[0][7], '-');
    EXPECT_EQ(lines[0][13], 'T');
    EXPECT_NE(lines[0].find("Z level=info msg=\"stamped\""),
              std::string::npos);
}

// --------------------------------------------------------------- gating

TEST(LogGate, ThresholdSuppressesLowerLevels)
{
    LogCapture capture(LogLevel::Warn);
    EXPECT_FALSE(Logger::enabledFor(LogLevel::Debug));
    EXPECT_FALSE(Logger::enabledFor(LogLevel::Info));
    EXPECT_TRUE(Logger::enabledFor(LogLevel::Warn));
    EXPECT_TRUE(Logger::enabledFor(LogLevel::Error));
    LOG_DEBUG("hidden");
    LOG_INFO("hidden");
    LOG_WARN("shown");
    LOG_ERROR("shown too");
    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("level=warn"), std::string::npos);
    EXPECT_NE(lines[1].find("level=error"), std::string::npos);
}

TEST(LogGate, OffSilencesEverythingButLogAlways)
{
    LogCapture capture(LogLevel::Off);
    LOG_ERROR("hidden");
    EXPECT_TRUE(capture.text().empty());
    // fatal()/panic() use this path: dead-end diagnostics must land
    // even at --log-level off.
    Logger::instance().logAlways(LogLevel::Error, "dying",
                                 {{"fatal", true}});
    EXPECT_EQ(capture.text(),
              "level=error msg=\"dying\" fatal=true\n");
}

TEST(LogGate, DisabledLevelDoesNotEvaluateFields)
{
    LogCapture capture(LogLevel::Error);
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return std::string("built");
    };
    LOG_DEBUG("skipped", {{"value", expensive()}});
    EXPECT_EQ(evaluations, 0);
    LOG_ERROR("taken", {{"value", expensive()}});
    EXPECT_EQ(evaluations, 1);
}

// ------------------------------------------------------- compat shims

TEST(LogCompat, WarnAndInformRouteThroughLogger)
{
    LogCapture capture(LogLevel::Debug);
    warn("questionable but survivable");
    inform("status update");
    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0],
              "level=warn msg=\"questionable but survivable\"");
    EXPECT_EQ(lines[1], "level=info msg=\"status update\"");
}

// ------------------------------------------------------- spec parsing

TEST(LogSpec, AppliesLevelFormatAndEmptyFieldsKeepSettings)
{
    LogCapture capture; // saves/restores level+format
    Logger &logger = Logger::instance();

    EXPECT_TRUE(applyLogSpec("error").ok());
    EXPECT_EQ(Logger::level(), LogLevel::Error);
    EXPECT_EQ(logger.format(), LogFormat::Text);

    EXPECT_TRUE(applyLogSpec("debug:json").ok());
    EXPECT_EQ(Logger::level(), LogLevel::Debug);
    EXPECT_EQ(logger.format(), LogFormat::Jsonl);

    // Empty level keeps debug; only the format changes back.
    EXPECT_TRUE(applyLogSpec(":text").ok());
    EXPECT_EQ(Logger::level(), LogLevel::Debug);
    EXPECT_EQ(logger.format(), LogFormat::Text);
}

TEST(LogSpec, MalformedFieldsReportConfigErrors)
{
    LogCapture capture;
    Expected<void> bad_level = applyLogSpec("loud");
    ASSERT_FALSE(bad_level.ok());
    EXPECT_EQ(bad_level.error().kind, ErrorKind::Config);

    Expected<void> bad_format = applyLogSpec("info:yaml");
    ASSERT_FALSE(bad_format.ok());
    EXPECT_EQ(bad_format.error().kind, ErrorKind::Config);
    // The valid level field was applied before the format failed.
    EXPECT_EQ(Logger::level(), LogLevel::Info);
}

TEST(LogSpec, RedirectsToFileAndRejectsBadPaths)
{
    LogCapture capture;
    const std::string path =
        ::testing::TempDir() + "fetchsim_log_spec_test.log";
    std::remove(path.c_str());

    EXPECT_TRUE(applyLogSpec("info:text:" + path).ok());
    // The capture hook still intercepts lines, so nothing lands in
    // the file from this test; what matters is that the sink opened.
    std::FILE *file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    std::fclose(file);
    std::remove(path.c_str());

    EXPECT_THROW(
        (void)applyLogSpec("info:text:/nonexistent-dir-xyz/f.log"),
        SimException);
}

TEST(LogFile, OpenFileWritesLinesToDisk)
{
    // No capture here: exercise the real file sink end-to-end, then
    // restore stderr by pointing the logger at a throwaway file...
    // there is no "close" API by design (the service never needs it),
    // so route through a capture for the duration instead.
    const std::string path =
        ::testing::TempDir() + "fetchsim_log_file_test.log";
    std::remove(path.c_str());

    const LogLevel saved = Logger::level();
    Logger &logger = Logger::instance();
    logger.setLevel(LogLevel::Info);
    logger.setTimestamps(false);
    logger.openFile(path);
    LOG_INFO("to.disk", {{"n", 1}});

    std::string capture_after;
    logger.setCapture(&capture_after); // stop writing to the file
    logger.setTimestamps(true);
    logger.setLevel(saved);

    std::FILE *file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char buf[256] = {0};
    ASSERT_NE(std::fgets(buf, sizeof(buf), file), nullptr);
    std::fclose(file);
    EXPECT_EQ(std::string(buf), "level=info msg=\"to.disk\" n=1\n");
    std::remove(path.c_str());
    logger.setCapture(nullptr);
}

// ------------------------------------------------------- interleaving

TEST(LogConcurrency, ParallelWritersNeverInterleaveLines)
{
    // The regression this PR fixes: parallel sweep workers calling
    // warn() used to interleave fragments on stderr.  Hammer the
    // logger from many threads and require every captured line to be
    // exactly one writer's intact payload.
    LogCapture capture(LogLevel::Debug);
    constexpr int kThreads = 8;
    constexpr int kLines = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            const std::string payload(16 + 8 * (t % 3),
                                      static_cast<char>('a' + t));
            for (int i = 0; i < kLines; ++i)
                LOG_INFO("spam",
                         {{"writer", t}, {"payload", payload}});
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads) * kLines);
    for (const std::string &line : lines) {
        // Each line names its writer and carries that writer's
        // single-character payload, unbroken.
        const std::size_t writer_at = line.find("writer=");
        ASSERT_NE(writer_at, std::string::npos) << line;
        const int writer = line[writer_at + 7] - '0';
        ASSERT_GE(writer, 0);
        ASSERT_LT(writer, kThreads);
        const std::string expected(16 + 8 * (writer % 3),
                                   static_cast<char>('a' + writer));
        EXPECT_NE(line.find("payload=\"" + expected + "\""),
                  std::string::npos)
            << line;
        EXPECT_EQ(line.rfind("level=info", 0), 0u) << line;
    }
}

} // namespace
} // namespace fetchsim
