/**
 * @file
 * Unit tests for the observability layer: MetricRegistry (hierarchical
 * counters/histograms, merge determinism), TraceSink (JSONL events,
 * zero-cost disabled path), and the Session::run instrumentation
 * overload (attaching metrics/trace must not perturb simulation
 * results).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/session.h"
#include "stats/metrics.h"
#include "stats/trace_sink.h"

namespace fetchsim
{
namespace
{

std::string jsonOf(const MetricRegistry &reg)
{
    std::ostringstream os;
    {
        JsonWriter json(os, 0);
        reg.writeJson(json);
    }
    return os.str();
}

// ---------------------------------------------------------------- paths

TEST(MetricPath, AcceptsHierarchicalLowerCaseNames)
{
    EXPECT_TRUE(MetricRegistry::validPath("fetch"));
    EXPECT_TRUE(MetricRegistry::validPath("fetch.stop.bank_conflict"));
    EXPECT_TRUE(MetricRegistry::validPath("icache.misses"));
    EXPECT_TRUE(MetricRegistry::validPath("a0.b_1.c"));
}

TEST(MetricPath, RejectsMalformedNames)
{
    EXPECT_FALSE(MetricRegistry::validPath(""));
    EXPECT_FALSE(MetricRegistry::validPath("."));
    EXPECT_FALSE(MetricRegistry::validPath("a..b"));
    EXPECT_FALSE(MetricRegistry::validPath(".a"));
    EXPECT_FALSE(MetricRegistry::validPath("a."));
    EXPECT_FALSE(MetricRegistry::validPath("Fetch.stop"));
    EXPECT_FALSE(MetricRegistry::validPath("fetch-stop"));
    EXPECT_FALSE(MetricRegistry::validPath("fetch stop"));
}

TEST(MetricPathDeath, InvalidRegistrationThrows)
{
    MetricRegistry reg;
    EXPECT_THROW(reg.counter("Bad.Path"), SimException);
    try {
        reg.counter("Bad.Path");
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("metric path"),
                  std::string::npos);
    }
}

// ------------------------------------------------------------- counters

TEST(Metrics, CounterRegistrationAndIncrement)
{
    MetricRegistry reg;
    Counter &c = reg.counter("fetch.collapse_events", "collapses");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(c.path(), "fetch.collapse_events");
    EXPECT_EQ(c.description(), "collapses");
}

TEST(Metrics, CounterRegistrationIsIdempotent)
{
    MetricRegistry reg;
    Counter &a = reg.counter("icache.misses", "first");
    Counter &b = reg.counter("icache.misses", "ignored");
    EXPECT_EQ(&a, &b);               // address-stable, same object
    EXPECT_EQ(b.description(), "first");
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsDeath, CounterVsHistogramPathCollisionThrows)
{
    MetricRegistry reg;
    reg.counter("fetch.group_size");
    EXPECT_THROW(reg.histogram("fetch.group_size", {1, 2}),
                 SimException);
}

// ----------------------------------------------------------- histograms

TEST(Metrics, HistogramBucketSemantics)
{
    MetricRegistry reg;
    // bounds {1,2,4} => buckets [0,1], (1,2], (2,4], (4,inf)
    Histogram &h = reg.histogram("fetch.group_size", {1, 2, 4});
    for (std::uint64_t s : {0u, 1u, 2u, 3u, 4u, 5u})
        h.record(s);
    ASSERT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u); // 0, 1
    EXPECT_EQ(h.bucketCount(1), 1u); // 2
    EXPECT_EQ(h.bucketCount(2), 2u); // 3, 4
    EXPECT_EQ(h.bucketCount(3), 1u); // 5
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 15u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Metrics, HistogramEmptyAndLabels)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("fetch.run_length", {1, 4});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.bucketLabel(0), "[0,1]");
    EXPECT_EQ(h.bucketLabel(1), "(1,4]");
    EXPECT_EQ(h.bucketLabel(2), "(4,inf)");
}

TEST(MetricsDeath, HistogramBoundsMustMatchOnReregistration)
{
    MetricRegistry reg;
    reg.histogram("fetch.group_size", {1, 2, 4});
    EXPECT_THROW(reg.histogram("fetch.group_size", {1, 2, 8}),
                 SimException);
}

// --------------------------------------------------- hierarchical names

TEST(Metrics, ChildrenWalksTheHierarchy)
{
    MetricRegistry reg;
    reg.counter("fetch.stop.mispredict");
    reg.counter("fetch.stop.cache_miss");
    reg.counter("fetch.cycles.delivering");
    reg.counter("icache.misses");
    reg.histogram("fetch.group_size", {1});

    std::vector<std::string> roots = reg.children("");
    EXPECT_EQ(roots, (std::vector<std::string>{"fetch", "icache"}));
    std::vector<std::string> fetch = reg.children("fetch");
    EXPECT_EQ(fetch, (std::vector<std::string>{"cycles", "group_size",
                                               "stop"}));
    std::vector<std::string> stop = reg.children("fetch.stop");
    EXPECT_EQ(stop, (std::vector<std::string>{"cache_miss",
                                              "mispredict"}));
    EXPECT_TRUE(reg.children("icache.misses").empty());
}

TEST(Metrics, FindAndSortedIteration)
{
    MetricRegistry reg;
    reg.counter("b.two");
    reg.counter("a.one");
    reg.histogram("c.three", {1});

    EXPECT_NE(reg.findCounter("a.one"), nullptr);
    EXPECT_EQ(reg.findCounter("a.missing"), nullptr);
    EXPECT_NE(reg.findHistogram("c.three"), nullptr);
    EXPECT_EQ(reg.findHistogram("a.one"), nullptr);

    std::vector<const Counter *> cs = reg.counters();
    ASSERT_EQ(cs.size(), 2u);
    EXPECT_EQ(cs[0]->path(), "a.one"); // sorted, not insertion order
    EXPECT_EQ(cs[1]->path(), "b.two");
}

// ---------------------------------------------------------------- merge

MetricRegistry &fill(MetricRegistry &reg, std::uint64_t base)
{
    reg.counter("fetch.stop.mispredict").inc(base);
    reg.counter("icache.misses").inc(2 * base);
    Histogram &h = reg.histogram("fetch.group_size", {1, 2, 4});
    for (std::uint64_t s = 0; s < base % 7 + 3; ++s)
        h.record(s);
    return reg;
}

TEST(Metrics, MergeAddsCountersAndBuckets)
{
    MetricRegistry a, b;
    fill(a, 10);
    fill(b, 32);
    b.counter("branch.ras_pops").inc(5); // missing in a: created

    a.merge(b);
    EXPECT_EQ(a.findCounter("fetch.stop.mispredict")->value(), 42u);
    EXPECT_EQ(a.findCounter("icache.misses")->value(), 84u);
    EXPECT_EQ(a.findCounter("branch.ras_pops")->value(), 5u);
    EXPECT_EQ(a.findHistogram("fetch.group_size")->count(),
              (10u % 7 + 3) + (32u % 7 + 3));
}

TEST(Metrics, MergeIsCommutativeAndAssociative)
{
    // Simulates sweep aggregation: any merge tree over the same
    // per-run registries must produce a bit-identical aggregate.
    auto make = [](int salt) {
        auto reg = std::make_unique<MetricRegistry>();
        fill(*reg, 7 + 13 * static_cast<std::uint64_t>(salt));
        if (salt % 2)
            reg->counter("branch.predictions").inc(salt);
        return reg;
    };

    MetricRegistry left;  // ((0+1)+2)+3
    for (int i = 0; i < 4; ++i)
        left.merge(*make(i));

    MetricRegistry right; // 3+(2+(1+0)) built via pairwise trees
    MetricRegistry pair01, pair23;
    pair01.merge(*make(1));
    pair01.merge(*make(0));
    pair23.merge(*make(3));
    pair23.merge(*make(2));
    right.merge(pair23);
    right.merge(pair01);

    EXPECT_EQ(jsonOf(left), jsonOf(right));
}

TEST(Metrics, MergeAcrossThreadsIsDeterministic)
{
    // Each worker fills a private registry (the SweepEngine pattern:
    // no shared mutable state); merging in index order afterwards must
    // equal the serial single-registry result regardless of how the
    // threads interleaved.
    constexpr int kWorkers = 8;
    std::vector<std::unique_ptr<MetricRegistry>> regs(kWorkers);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
        regs[w] = std::make_unique<MetricRegistry>();
        threads.emplace_back([&regs, w] {
            fill(*regs[w], static_cast<std::uint64_t>(w) * 3 + 1);
        });
    }
    for (std::thread &t : threads)
        t.join();

    MetricRegistry merged;
    for (int w = 0; w < kWorkers; ++w)
        merged.merge(*regs[w]);

    MetricRegistry serial;
    for (int w = 0; w < kWorkers; ++w)
        fill(serial, static_cast<std::uint64_t>(w) * 3 + 1);

    EXPECT_EQ(jsonOf(merged), jsonOf(serial));
}

TEST(Metrics, ResetZeroesButKeepsRegistrations)
{
    MetricRegistry reg;
    fill(reg, 9);
    reg.reset();
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.findCounter("icache.misses")->value(), 0u);
    EXPECT_EQ(reg.findHistogram("fetch.group_size")->count(), 0u);
}

// ------------------------------------------------------------ rendering

TEST(Metrics, WriteJsonShape)
{
    MetricRegistry reg;
    reg.counter("icache.misses").inc(3);
    reg.histogram("fetch.group_size", {2}).record(1);

    std::string json = jsonOf(reg);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"icache.misses\":3"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"fetch.group_size\""), std::string::npos);
    EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
}

TEST(Metrics, FormatTextListsEveryMetric)
{
    MetricRegistry reg;
    reg.counter("icache.misses", "block lookups that missed").inc(7);
    reg.histogram("fetch.group_size", {2}).record(1);
    std::string text = reg.formatText();
    EXPECT_NE(text.find("icache.misses"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("fetch.group_size"), std::string::npos);
}

// --------------------------------------------------------------- gauges

TEST(Metrics, GaugeSetAddAndDec)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("service.queue_depth", "queued cells");
    EXPECT_EQ(g.value(), 0);
    g.set(7);
    g.inc();
    g.add(4);
    g.dec();
    EXPECT_EQ(g.value(), 11);
    g.add(-20);
    EXPECT_EQ(g.value(), -9); // gauges go negative; counters cannot
    EXPECT_EQ(g.path(), "service.queue_depth");
    EXPECT_EQ(g.description(), "queued cells");
}

TEST(Metrics, GaugeRegistrationIsIdempotentAndCollisionChecked)
{
    MetricRegistry reg;
    Gauge &a = reg.gauge("replay.bytes_in_memory", "first");
    Gauge &b = reg.gauge("replay.bytes_in_memory", "ignored");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.description(), "first");
    EXPECT_EQ(reg.size(), 1u);

    reg.counter("some.counter");
    reg.histogram("some.histogram", {1});
    EXPECT_THROW(reg.gauge("some.counter"), SimException);
    EXPECT_THROW(reg.gauge("some.histogram"), SimException);
    EXPECT_THROW(reg.counter("replay.bytes_in_memory"), SimException);
    EXPECT_THROW(reg.histogram("replay.bytes_in_memory", {1}),
                 SimException);
}

TEST(Metrics, GaugeMergeSumsShardsAndResetZeroes)
{
    MetricRegistry a, b;
    a.gauge("replay.bytes_in_memory").set(100);
    b.gauge("replay.bytes_in_memory").set(28);
    b.gauge("replay.bytes_spilled").set(5);
    a.merge(b);
    EXPECT_EQ(a.findGauge("replay.bytes_in_memory")->value(), 128);
    EXPECT_EQ(a.findGauge("replay.bytes_spilled")->value(), 5);
    EXPECT_EQ(a.findGauge("missing"), nullptr);

    a.reset();
    EXPECT_EQ(a.findGauge("replay.bytes_in_memory")->value(), 0);
    EXPECT_EQ(a.size(), 2u); // registrations survive reset
}

TEST(Metrics, GaugeAppearsInJsonTextAndChildren)
{
    MetricRegistry reg;
    reg.gauge("service.queue_depth", "queued cells").set(3);
    reg.counter("service.requests").inc(9);

    std::string json = jsonOf(reg);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"service.queue_depth\":3"),
              std::string::npos);

    std::string text = reg.formatText();
    EXPECT_NE(text.find("service.queue_depth = 3 (gauge)"),
              std::string::npos);

    std::vector<std::string> kids = reg.children("service");
    EXPECT_EQ(kids, (std::vector<std::string>{"queue_depth",
                                              "requests"}));
}

// ----------------------------------------------------------- prometheus

TEST(Metrics, LatencyBucketBoundsAreStrictlyIncreasing)
{
    const std::vector<std::uint64_t> &bounds = latencyBucketBoundsUs();
    ASSERT_GE(bounds.size(), 8u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
    // Spans microseconds to multi-second requests.
    EXPECT_EQ(bounds.front(), 1u);
    EXPECT_GE(bounds.back(), 1000000u);
}

/**
 * Minimal exposition-format line parser: every non-comment line must
 * be `name{labels} value` or `name value`, names restricted to the
 * Prometheus charset.  Returns false (with a diagnostic) otherwise.
 */
bool validPrometheusLine(const std::string &line, std::string *why)
{
    if (line.empty()) {
        *why = "empty line";
        return false;
    }
    if (line[0] == '#') {
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0)
            return true;
        *why = "malformed comment: " + line;
        return false;
    }
    std::size_t i = 0;
    auto nameChar = [](char c, bool first) {
        const bool alpha = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || c == '_' ||
                           c == ':';
        return first ? alpha : (alpha || (c >= '0' && c <= '9'));
    };
    while (i < line.size() && nameChar(line[i], i == 0))
        ++i;
    if (i == 0) {
        *why = "missing metric name: " + line;
        return false;
    }
    if (i < line.size() && line[i] == '{') {
        std::size_t close = line.find('}', i);
        if (close == std::string::npos) {
            *why = "unterminated label set: " + line;
            return false;
        }
        i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
        *why = "missing value separator: " + line;
        return false;
    }
    const std::string value = line.substr(i + 1);
    if (value.empty() || value.find(' ') != std::string::npos) {
        *why = "malformed value: " + line;
        return false;
    }
    char *end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
        *why = "non-numeric value: " + line;
        return false;
    }
    return true;
}

TEST(Metrics, FormatPrometheusEveryLineParses)
{
    MetricRegistry reg;
    reg.counter("service.requests", "HTTP requests accepted").inc(12);
    reg.gauge("service.queue_depth", "queued cells").set(3);
    Histogram &h = reg.histogram("service.request_latency_us",
                                 {10, 100, 1000},
                                 "request latency, microseconds");
    for (std::uint64_t s : {5u, 50u, 500u, 5000u})
        h.record(s);

    const std::string doc = reg.formatPrometheus();
    ASSERT_FALSE(doc.empty());
    ASSERT_EQ(doc.back(), '\n');

    std::istringstream lines(doc);
    std::string line, why;
    std::size_t samples = 0;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(validPrometheusLine(line, &why)) << why;
        if (!line.empty() && line[0] != '#')
            ++samples;
    }
    // counter + gauge + (4 finite-bound? no: 3 bounds + inf) buckets
    // + sum + count = 1 + 1 + 4 + 2
    EXPECT_EQ(samples, 8u);
}

TEST(Metrics, FormatPrometheusShapesAndCumulativeBuckets)
{
    MetricRegistry reg;
    reg.counter("service.requests", "HTTP requests").inc(12);
    reg.gauge("service.queue_depth", "queued cells").set(3);
    Histogram &h =
        reg.histogram("service.queue_wait_us", {10, 100}, "wait");
    for (std::uint64_t s : {5u, 50u, 500u, 7u})
        h.record(s);

    const std::string doc = reg.formatPrometheus();
    // Dots become underscores; TYPE lines carry the metric kind.
    EXPECT_NE(doc.find("# TYPE service_requests counter"),
              std::string::npos);
    EXPECT_NE(doc.find("service_requests 12"), std::string::npos);
    EXPECT_NE(doc.find("# TYPE service_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(doc.find("service_queue_depth 3"), std::string::npos);
    EXPECT_NE(doc.find("# TYPE service_queue_wait_us histogram"),
              std::string::npos);
    // Buckets are cumulative: le=10 -> 2, le=100 -> 3, +Inf -> 4.
    EXPECT_NE(doc.find("service_queue_wait_us_bucket{le=\"10\"} 2"),
              std::string::npos);
    EXPECT_NE(doc.find("service_queue_wait_us_bucket{le=\"100\"} 3"),
              std::string::npos);
    EXPECT_NE(doc.find("service_queue_wait_us_bucket{le=\"+Inf\"} 4"),
              std::string::npos);
    EXPECT_NE(doc.find("service_queue_wait_us_sum 562"),
              std::string::npos);
    EXPECT_NE(doc.find("service_queue_wait_us_count 4"),
              std::string::npos);
    // HELP text is carried for described metrics.
    EXPECT_NE(doc.find("# HELP service_requests HTTP requests"),
              std::string::npos);
}

// ------------------------------------------------------------ TraceSink

TEST(TraceSink, DisabledSinkIsInertAndCountsNothing)
{
    TraceSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.begin("fetch", 1);
    sink.field("pc", std::uint64_t{4096})
        .field("stop", "issue_limit")
        .field("ipc", 3.5)
        .field("ok", true);
    sink.end();
    sink.begin("retire", 2);
    sink.end();
    EXPECT_EQ(sink.events(), 0u);
}

TEST(TraceSink, EnabledSinkWritesOneJsonLinePerEvent)
{
    std::ostringstream os;
    TraceSink sink(os);
    EXPECT_TRUE(sink.enabled());

    sink.begin("fetch", 12);
    sink.field("pc", std::uint64_t{4096})
        .field("delivered", 4)
        .field("stop", "issue_limit");
    sink.end();
    sink.begin("fetch", 13);
    sink.field("note", std::string("a\"b"));
    sink.end();

    EXPECT_EQ(sink.events(), 2u);
    std::istringstream lines(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "{\"ev\":\"fetch\",\"cycle\":12,\"pc\":4096,"
                    "\"delivered\":4,\"stop\":\"issue_limit\"}");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "{\"ev\":\"fetch\",\"cycle\":13,"
                    "\"note\":\"a\\\"b\"}");
    EXPECT_FALSE(std::getline(lines, line));
}

// --------------------------------------------- run instrumentation hook

RunConfig smallConfig()
{
    RunConfig config;
    config.benchmark = "eqntott";
    config.machine = MachineModel::P18;
    config.scheme = SchemeKind::CollapsingBuffer;
    config.maxRetired = 4000;
    return config;
}

TEST(RunInstrumentationTest, MetricsDoNotPerturbResults)
{
    Session session;
    RunConfig config = smallConfig();
    RunResult plain = session.run(config);

    MetricRegistry metrics;
    TraceSink disabled_trace; // attached but disabled
    RunInstrumentation inst;
    inst.metrics = &metrics;
    inst.trace = &disabled_trace;
    RunResult observed = session.run(config, inst);

    // The RunCounters block must be bit-identical: instrumentation
    // observes the simulation, it never participates in it.
    EXPECT_EQ(std::memcmp(&plain.counters, &observed.counters,
                          sizeof(RunCounters)),
              0);

    // ...and the disabled trace sink must have emitted nothing.
    EXPECT_EQ(disabled_trace.events(), 0u);

    // The registry, meanwhile, saw the run: cycle breakdown totals
    // the simulated cycles, and the stop census matches RunCounters.
    const Counter *delivering =
        metrics.findCounter("fetch.cycles.delivering");
    const Counter *penalty =
        metrics.findCounter("fetch.cycles.stalled_penalty");
    const Counter *empty =
        metrics.findCounter("fetch.cycles.stalled_empty");
    ASSERT_NE(delivering, nullptr);
    ASSERT_NE(penalty, nullptr);
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(delivering->value() + penalty->value() + empty->value(),
              observed.counters.cycles);
    EXPECT_EQ(delivering->value(),
              observed.counters.cycles - observed.counters.stallCycles);

    const Histogram *groups = metrics.findHistogram("fetch.group_size");
    ASSERT_NE(groups, nullptr);
    EXPECT_EQ(groups->sum(), observed.counters.delivered);
}

TEST(RunInstrumentationTest, TraceSinkSeesFetchEvents)
{
    Session session;
    RunConfig config = smallConfig();
    config.maxRetired = 1000;

    std::ostringstream os;
    MetricRegistry metrics;
    TraceSink trace(os);
    RunInstrumentation inst;
    inst.metrics = &metrics;
    inst.trace = &trace;
    RunResult result = session.run(config, inst);

    EXPECT_GT(trace.events(), 0u);
    EXPECT_NE(os.str().find("\"ev\":\"fetch\""), std::string::npos);

    // Tracing must not perturb results either.
    RunResult plain = session.run(config);
    EXPECT_EQ(std::memcmp(&plain.counters, &result.counters,
                          sizeof(RunCounters)),
              0);
}

} // namespace
} // namespace fetchsim
