/**
 * @file
 * Unit tests for branch-behaviour models and their evaluation state.
 */

#include <gtest/gtest.h>

#include "workload/branch_behavior.h"

namespace fetchsim
{
namespace
{

constexpr std::uint64_t kSeed = 0xABCD;

std::vector<bool>
evaluateN(const BranchBehavior &beh, BehaviorId id, int input, int n)
{
    BehaviorState state;
    std::vector<bool> out;
    for (int i = 0; i < n; ++i)
        out.push_back(state.evaluate(beh, id, kSeed, input));
    return out;
}

TEST(BehaviorTable, AddAndGet)
{
    BehaviorTable table;
    BranchBehavior b;
    b.kind = BehaviorKind::Loop;
    b.trip = 7;
    BehaviorId id = table.add(b);
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(table.get(id).trip, 7);
    EXPECT_EQ(table.size(), 1u);
}

TEST(Behavior, LoopPatternTakenThenNotTaken)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Loop;
    beh.trip = 10;
    auto outcomes = evaluateN(beh, 0, 0, 60);

    // Determine the (jittered) effective trip from the first
    // not-taken position, then check strict periodicity.
    int trip = 0;
    while (outcomes[static_cast<std::size_t>(trip)])
        ++trip;
    ++trip; // count the not-taken slot
    ASSERT_GE(trip, 2);
    for (std::size_t i = 0; i + 1 < outcomes.size(); ++i) {
        bool expect_taken =
            (i % static_cast<std::size_t>(trip)) !=
            static_cast<std::size_t>(trip - 1);
        ASSERT_EQ(outcomes[i], expect_taken) << "position " << i;
    }
}

TEST(Behavior, LoopJitterStaysNearNominal)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Loop;
    beh.trip = 32;
    for (int input = 0; input <= kEvalInput; ++input) {
        auto outcomes = evaluateN(beh, 3, input, 100);
        int trip = 0;
        while (outcomes[static_cast<std::size_t>(trip)])
            ++trip;
        ++trip;
        EXPECT_GE(trip, 32 - 4);
        EXPECT_LE(trip, 32 + 4);
    }
}

TEST(Behavior, BernoulliFrequencyNearP)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Bernoulli;
    beh.takenProb = 0.8;
    auto outcomes = evaluateN(beh, 1, kEvalInput, 20000);
    int taken = 0;
    for (bool t : outcomes)
        taken += t ? 1 : 0;
    // Input jitter moves p by at most +-0.04.
    EXPECT_NEAR(static_cast<double>(taken) / 20000.0, 0.8, 0.06);
}

TEST(Behavior, AlternatingHasExactPeriod)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Alternating;
    beh.period = 3;
    auto outcomes = evaluateN(beh, 2, 0, 60);
    // Pattern repeats with period 6 (3 taken, 3 not) from any phase.
    for (std::size_t i = 0; i + 6 < outcomes.size(); ++i)
        ASSERT_EQ(outcomes[i], outcomes[i + 6]);
    int taken = 0;
    for (std::size_t i = 0; i < 6; ++i)
        taken += outcomes[i] ? 1 : 0;
    EXPECT_EQ(taken, 3);
}

TEST(Behavior, SameInputReplaysIdentically)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Bernoulli;
    beh.takenProb = 0.5;
    EXPECT_EQ(evaluateN(beh, 4, 2, 500), evaluateN(beh, 4, 2, 500));
}

TEST(Behavior, DifferentInputsDiffer)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Bernoulli;
    beh.takenProb = 0.5;
    EXPECT_NE(evaluateN(beh, 5, 0, 500), evaluateN(beh, 5, 1, 500));
}

TEST(Behavior, DifferentBranchIdsGetDifferentStreams)
{
    BranchBehavior beh;
    beh.kind = BehaviorKind::Bernoulli;
    beh.takenProb = 0.5;
    EXPECT_NE(evaluateN(beh, 6, 0, 500), evaluateN(beh, 7, 0, 500));
}

} // anonymous namespace
} // namespace fetchsim
