/**
 * @file
 * The replay-cache contract (sim/session.h, exec/replay_buffer.h):
 * a sweep run from a recorded dynamic trace must be bit-identical to
 * the live-executor run -- counters, per-cycle trace events and
 * metric registry alike -- at any thread count and under every
 * ReplayPolicy, while the cache records each (benchmark, layout,
 * input, length) key exactly once.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/replay_buffer.h"
#include "exec/trace_file.h"
#include "sim/plan.h"
#include "sim/report.h"
#include "sim/repro_report.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/metrics.h"
#include "stats/trace_sink.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

/** A heterogeneous plan whose 12 cells share 2 replay keys. */
ExperimentPlan
testPlan(std::uint64_t budget = 8000)
{
    ExperimentPlan plan;
    plan.benchmarks({"compress", "eqntott"})
        .machines({MachineModel::P14, MachineModel::P112})
        .schemes({SchemeKind::Sequential, SchemeKind::CollapsingBuffer,
                  SchemeKind::Perfect})
        .layouts({LayoutKind::Unordered})
        .maxRetired(budget);
    return plan;
}

std::string
sweepJson(const ReplayOptions &replay, int threads,
          ReplayStats *stats = nullptr)
{
    Session session;
    SweepOptions options;
    options.threads = threads;
    options.replay = replay;
    SweepEngine engine(session, options);
    const SweepResult sweep = engine.run(testPlan());
    if (stats)
        *stats = session.replayStats();
    std::ostringstream os;
    writeRunsJson(os, sweep.runs);
    return os.str();
}

TEST(ReplayPolicyNames, RoundTripThroughTheParser)
{
    for (ReplayPolicy policy :
         {ReplayPolicy::Off, ReplayPolicy::InMemory,
          ReplayPolicy::SpillToDisk}) {
        const Expected<ReplayPolicy> parsed =
            parseReplayPolicy(replayPolicyName(policy));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), policy);
    }
    EXPECT_FALSE(parseReplayPolicy("sometimes").ok());
    EXPECT_EQ(parseReplayPolicy("sometimes").error().kind,
              ErrorKind::Config);
}

TEST(DynTrace, ReplaysTheRecordedStreamVerbatim)
{
    Workload wl = test::hammockWorkload(2, 3, 0.6);
    Executor record_exec(wl, kEvalInput);
    const DynTrace trace = recordStream(record_exec, 2000);
    ASSERT_EQ(trace.size(), 2000u);
    EXPECT_EQ(trace.bytes(), 2000u * DynTrace::kBytesPerInst);

    Executor live(wl, kEvalInput);
    TraceReplaySource replay(trace);
    for (std::uint64_t i = 0; i < 2000; ++i) {
        DynInst expect;
        DynInst got;
        ASSERT_TRUE(live.next(expect));
        ASSERT_TRUE(replay.next(got));
        ASSERT_EQ(got.pc, expect.pc) << "inst " << i;
        ASSERT_EQ(got.si.op, expect.si.op);
        ASSERT_EQ(got.si.dest, expect.si.dest);
        ASSERT_EQ(got.si.src1, expect.si.src1);
        ASSERT_EQ(got.si.src2, expect.si.src2);
        ASSERT_EQ(got.si.imm, expect.si.imm);
        ASSERT_EQ(got.taken, expect.taken);
        ASSERT_EQ(got.actualTarget, expect.actualTarget);
        ASSERT_EQ(got.seq, expect.seq);
    }
    DynInst spare;
    EXPECT_FALSE(replay.next(spare)); // bounded
    replay.rewind();
    EXPECT_TRUE(replay.next(spare));
    EXPECT_EQ(spare.seq, 0u);
}

TEST(DynTrace, HashMatchesTheOnDiskTwin)
{
    // The in-memory and spill-file recorders hash the same canonical
    // bytes, so the same stream yields the same content hash in
    // either representation.
    const std::string path = "/tmp/fetchsim_test_replay_twin.trace";
    Workload wl = test::hammockWorkload(3, 2, 0.4);

    Executor mem_exec(wl, kEvalInput);
    const DynTrace trace = recordStream(mem_exec, 1500);

    Executor disk_exec(wl, kEvalInput);
    recordTrace(disk_exec, path, 1500);
    TraceReader reader(path);
    EXPECT_EQ(trace.contentHash(), reader.contentHash());
    std::remove(path.c_str());
}

TEST(ReplaySweep, CountersAreIdenticalUnderEveryPolicy)
{
    const std::string live = sweepJson(ReplayOptions{}, 4);

    ReplayOptions mem;
    mem.policy = ReplayPolicy::InMemory;
    ReplayStats mem_stats;
    EXPECT_EQ(sweepJson(mem, 4, &mem_stats), live);
    // 12 cells over {compress, eqntott} x unordered = 2 keys.
    EXPECT_EQ(mem_stats.misses, 2u);
    EXPECT_EQ(mem_stats.hits, 10u);
    EXPECT_EQ(mem_stats.fallbacks, 0u);
    EXPECT_GT(mem_stats.bytesInMemory, 0u);
    EXPECT_EQ(mem_stats.bytesSpilled, 0u);

    ReplayOptions disk;
    disk.policy = ReplayPolicy::SpillToDisk;
    ReplayStats disk_stats;
    EXPECT_EQ(sweepJson(disk, 4, &disk_stats), live);
    EXPECT_EQ(disk_stats.misses, 2u);
    EXPECT_EQ(disk_stats.hits, 10u);
    EXPECT_GT(disk_stats.bytesSpilled, 0u);
    EXPECT_EQ(disk_stats.bytesInMemory, 0u);
}

TEST(ReplaySweep, ThreadCountNeverChangesTheBytes)
{
    ReplayOptions mem;
    mem.policy = ReplayPolicy::InMemory;
    const std::string one = sweepJson(mem, 1);
    EXPECT_EQ(sweepJson(mem, 8), one);
}

TEST(ReplayRun, TraceEventsAndMetricsMatchLiveExecution)
{
    RunConfig config;
    config.benchmark = "compress";
    config.machine = MachineModel::P18;
    config.scheme = SchemeKind::CollapsingBuffer;
    config.maxRetired = 6000;

    auto instrumented = [](Session &session, const RunConfig &cfg,
                           const ReplayOptions &replay,
                           std::string *events) {
        MetricRegistry metrics;
        std::ostringstream trace;
        TraceSink sink(trace);
        RunInstrumentation inst;
        inst.metrics = &metrics;
        inst.trace = &sink;
        const RunResult result =
            session.run(cfg, inst, 0, replay);
        *events = trace.str();
        return std::make_pair(result.toJson(), metrics.formatText());
    };

    Session session;
    std::string live_events;
    const auto live =
        instrumented(session, config, ReplayOptions{}, &live_events);

    ReplayOptions mem;
    mem.policy = ReplayPolicy::InMemory;
    std::string replay_events;
    // Run twice: the first records (miss), the second replays (hit);
    // both must match live bit for bit.
    for (int round = 0; round < 2; ++round) {
        const auto replayed =
            instrumented(session, config, mem, &replay_events);
        EXPECT_EQ(replayed.first, live.first) << "round " << round;
        EXPECT_EQ(replayed.second, live.second) << "round " << round;
        EXPECT_EQ(replay_events, live_events) << "round " << round;
    }
    EXPECT_FALSE(live_events.empty());
    const ReplayStats stats = session.replayStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(ReplayRun, ExportedMetricsMirrorTheStats)
{
    Session session;
    RunConfig config;
    config.benchmark = "eqntott";
    config.maxRetired = 4000;

    ReplayOptions mem;
    mem.policy = ReplayPolicy::InMemory;
    session.run(config, RunInstrumentation{}, 0, mem);
    session.run(config, RunInstrumentation{}, 0, mem);

    MetricRegistry registry;
    session.exportReplayMetrics(registry);
    const std::string text = registry.formatText();
    EXPECT_NE(text.find("replay.hits"), std::string::npos);
    EXPECT_NE(text.find("replay.misses"), std::string::npos);
    const ReplayStats stats = session.replayStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_GT(stats.recordedInsts, 4000u); // budget + slack
}

TEST(ReplayRun, BudgetOverflowFallsBackToLiveExecution)
{
    RunConfig config;
    config.benchmark = "compress";
    config.maxRetired = 5000;

    Session off_session;
    const RunResult live =
        off_session.run(config, RunInstrumentation{});

    Session session;
    ReplayOptions tiny;
    tiny.policy = ReplayPolicy::InMemory;
    tiny.budgetBytes = 64; // far below one trace
    const RunResult first =
        session.run(config, RunInstrumentation{}, 0, tiny);
    const RunResult second =
        session.run(config, RunInstrumentation{}, 0, tiny);
    EXPECT_EQ(first.toJson(), live.toJson());
    EXPECT_EQ(second.toJson(), live.toJson());

    const ReplayStats stats = session.replayStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.fallbacks, 2u);
    EXPECT_EQ(stats.recordedInsts, 0u);
    EXPECT_EQ(stats.bytesInMemory, 0u);
    EXPECT_EQ(session.cachedReplayTraces(), 0u);
}

TEST(ReplayRun, SpillFilesAreRemovedWithTheSession)
{
    const std::string dir = "/tmp/fetchsim_test_replay_spill";
    std::filesystem::remove_all(dir);

    RunConfig config;
    config.benchmark = "eqntott";
    config.maxRetired = 3000;
    ReplayOptions disk;
    disk.policy = ReplayPolicy::SpillToDisk;
    disk.spillDir = dir;

    {
        Session session;
        session.run(config, RunInstrumentation{}, 0, disk);
        EXPECT_EQ(session.cachedReplayTraces(), 1u);
        std::size_t files = 0;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir))
            files += entry.is_regular_file() ? 1 : 0;
        EXPECT_EQ(files, 1u);
    }
    // Destructor hygiene: the trace files are gone (a user-provided
    // directory itself survives).
    std::size_t files = 0;
    if (std::filesystem::exists(dir)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(dir))
            files += entry.is_regular_file() ? 1 : 0;
    }
    EXPECT_EQ(files, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ReplayPrepare, RecordsWithoutCountingHitsOrFallbacks)
{
    Session session;
    ReplayOptions mem;
    mem.policy = ReplayPolicy::InMemory;
    RunConfig config;
    config.benchmark = "compress";
    config.maxRetired = 3000;

    session.prepareReplay(config, mem);
    session.prepareReplay(config, mem); // idempotent
    EXPECT_EQ(session.cachedReplayTraces(), 1u);

    ReplayStats stats = session.replayStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.fallbacks, 0u);

    session.run(config, RunInstrumentation{}, 0, mem);
    stats = session.replayStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(ReplayReport, DocumentIsByteIdenticalWithReplayOn)
{
    ReproReportOptions options;
    options.dynInsts = 2000; // small budget: keep the test quick
    options.threads = 2;

    Session off_session;
    const std::string off =
        generateReproReport(off_session, options);

    options.replay.policy = ReplayPolicy::InMemory;
    Session mem_session;
    const std::string mem =
        generateReproReport(mem_session, options);
    EXPECT_EQ(mem, off);
    EXPECT_GT(mem_session.replayStats().hits, 0u);
}

} // anonymous namespace
} // namespace fetchsim
