/**
 * @file
 * Unit tests for the statistics utilities: counters, summary means,
 * and the ASCII table printer.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "stats/counters.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace fetchsim
{
namespace
{

TEST(Summary, HarmonicMeanKnownValues)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(harmonicMean({2.0, 4.0, 8.0}), 24.0 / 7.0, 1e-12);
}

TEST(Summary, HarmonicMeanDominatedBySmallest)
{
    EXPECT_LT(harmonicMean({0.1, 10.0, 10.0}),
              arithmeticMean({0.1, 10.0, 10.0}));
}

TEST(Summary, EmptyInputsYieldZero)
{
    EXPECT_EQ(harmonicMean({}), 0.0);
    EXPECT_EQ(arithmeticMean({}), 0.0);
    EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(Summary, MeanOrderingInequality)
{
    std::vector<double> v = {1.0, 3.0, 9.0, 27.0};
    EXPECT_LE(harmonicMean(v), geometricMean(v));
    EXPECT_LE(geometricMean(v), arithmeticMean(v));
}

TEST(Summary, GeometricMeanKnownValue)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Summary, PercentOf)
{
    EXPECT_DOUBLE_EQ(percentOf(1.0, 2.0), 50.0);
    EXPECT_DOUBLE_EQ(percentOf(1.0, 0.0), 0.0);
}

TEST(SummaryDeath, RejectsNonPositiveRates)
{
    EXPECT_EXIT(harmonicMean({1.0, 0.0}),
                ::testing::ExitedWithCode(1), "non-positive");
}

TEST(Counters, DerivedRates)
{
    RunCounters c;
    c.cycles = 100;
    c.retired = 250;
    c.delivered = 260;
    c.nopsRetired = 50;
    c.nopsDelivered = 52;
    c.condBranches = 40;
    c.mispredicts = 4;
    c.icacheAccesses = 200;
    c.icacheMisses = 10;
    c.takenBranches = 50;
    c.intraBlockTaken = 5;
    EXPECT_DOUBLE_EQ(c.ipc(), 2.0);   // useful only
    EXPECT_DOUBLE_EQ(c.rawIpc(), 2.5);
    EXPECT_DOUBLE_EQ(c.eir(), 2.08);
    EXPECT_DOUBLE_EQ(c.mispredictRate(), 0.1);
    EXPECT_DOUBLE_EQ(c.icacheMissRatio(), 0.05);
    EXPECT_DOUBLE_EQ(c.intraBlockRatio(), 0.1);
}

TEST(Counters, ZeroCyclesSafe)
{
    RunCounters c;
    EXPECT_EQ(c.ipc(), 0.0);
    EXPECT_EQ(c.eir(), 0.0);
    EXPECT_EQ(c.mispredictRate(), 0.0);
}

TEST(Counters, StopHistogram)
{
    RunCounters c;
    c.noteStop(FetchStop::TakenBranch);
    c.noteStop(FetchStop::TakenBranch);
    c.noteStop(FetchStop::CacheMiss);
    EXPECT_EQ(c.stops[static_cast<int>(FetchStop::TakenBranch)], 2u);
    EXPECT_EQ(c.stops[static_cast<int>(FetchStop::CacheMiss)], 1u);
}

TEST(Counters, FormatMentionsKeyRates)
{
    RunCounters c;
    c.cycles = 10;
    c.retired = 20;
    c.delivered = 20;
    std::string text = c.format();
    EXPECT_NE(text.find("IPC=2.000"), std::string::npos);
    EXPECT_NE(text.find("cycles=10"), std::string::npos);
}

TEST(Counters, StopNamesAreDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumFetchStops; ++i)
        names.insert(fetchStopName(static_cast<FetchStop>(i)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumFetchStops));
}

TEST(Table, RendersAlignedGrid)
{
    TextTable table("Caption");
    table.setHeader({"name", "value"});
    table.startRow();
    table.addCell(std::string("alpha"));
    table.addCell(static_cast<std::uint64_t>(42));
    table.startRow();
    table.addCell(std::string("b"));
    table.addCell(3.14159, 2);
    std::string text = table.render();
    EXPECT_NE(text.find("Caption"), std::string::npos);
    EXPECT_NE(text.find("| alpha"), std::string::npos);
    EXPECT_NE(text.find("| 42"), std::string::npos);
    EXPECT_NE(text.find("| 3.14"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, PercentFormatting)
{
    TextTable table("");
    table.setHeader({"v"});
    table.startRow();
    table.addPercent(12.345, 1);
    EXPECT_NE(table.render().find("12.3%"), std::string::npos);
}

TEST(Table, SeparatorRowsRenderAsRules)
{
    TextTable table("t");
    table.setHeader({"a"});
    table.startRow();
    table.addCell(std::string("x"));
    table.addSeparator();
    table.startRow();
    table.addCell(std::string("y"));
    std::string text = table.render();
    // Horizontal rules: top, under-header, the separator, bottom.
    std::size_t rules = 0;
    for (std::size_t pos = text.find("+--");
         pos != std::string::npos; pos = text.find("+--", pos + 1))
        ++rules;
    EXPECT_EQ(rules, 4u);
    EXPECT_EQ(table.rowCount(), 2u);
}

} // anonymous namespace
} // namespace fetchsim
