/**
 * @file
 * Unit tests for the trace-cache fetch mechanism and its multi-branch
 * predictor: miss/fill/hit paths, delivery across taken branches,
 * partial-trace delivery, and recovery from a wrong outcome-vector
 * bit.
 */

#include <gtest/gtest.h>

#include "fetch/trace_cache.h"
#include "sim/session.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

/** Fixture: a 12-issue machine with tiny 16B (4-inst) blocks, the
 *  same geometry the walker tests use, plus a small trace cache. */
class TraceCacheTest : public ::testing::Test
{
  protected:
    TraceCacheTest()
        : suite(1024, 4), icache(32 * 1024, 16, 2)
    {
        cfg = makeP14();
        cfg.issueRate = 12;
        cfg.blockBytes = 16;
        cfg.specDepth = 8;
        cfg.traceSets = 16;
        cfg.traceWays = 2;
        warmBlocks(0x10000, 64);
    }

    void
    warmBlocks(std::uint64_t base, int count)
    {
        for (int i = 0; i < count; ++i)
            icache.access(base + static_cast<std::uint64_t>(i) * 16);
    }

    FetchOutcome
    form(TraceCacheFetch &tc, const std::vector<DynInst> &stream,
         int window_space = 64, int spec_headroom = -1)
    {
        FetchContext ctx;
        ctx.stream = stream.data();
        ctx.streamLen = static_cast<int>(stream.size());
        ctx.predictor = &suite;
        ctx.icache = &icache;
        ctx.cfg = &cfg;
        ctx.specHeadroom =
            spec_headroom < 0 ? cfg.specDepth : spec_headroom;
        ctx.windowSpace = window_space;
        return tc.formGroup(ctx);
    }

    MachineConfig cfg;
    PredictorSuite suite;
    ICache icache;
};

constexpr std::uint64_t kA = 0x10000;
constexpr std::uint64_t kC = kA + 32;

std::vector<DynInst>
seqRun(std::uint64_t start, int count)
{
    std::vector<test::StreamSpec> specs;
    for (int i = 0; i < count; ++i)
        specs.push_back({start + static_cast<std::uint64_t>(i) * 4,
                         OpClass::IntAlu, false, 0});
    return test::makeStream(specs);
}

TEST_F(TraceCacheTest, ColdLookupMissesThenFills)
{
    TraceCacheFetch tc(cfg);
    FetchOutcome out = form(tc, seqRun(kA, 8));
    // Miss path = the paper's sequential fetch: one aligned block.
    EXPECT_EQ(out.delivered, 4);
    EXPECT_EQ(out.stop, FetchStop::BlockEnd);
    EXPECT_EQ(tc.hits(), 0u);
    EXPECT_EQ(tc.misses(), 1u);
    EXPECT_EQ(tc.fills(), 1u);
}

TEST_F(TraceCacheTest, WarmHitCrossesBlockBoundary)
{
    TraceCacheFetch tc(cfg);
    auto stream = seqRun(kA, 8); // spans two 4-inst blocks
    form(tc, stream);            // miss + fill (8-inst line)
    FetchOutcome out = form(tc, stream);
    // The trace line ignores the block boundary that stopped the
    // sequential miss path at 4.
    EXPECT_EQ(out.delivered, 8);
    EXPECT_EQ(out.stop, FetchStop::StreamEnd);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
}

TEST_F(TraceCacheTest, HitFollowsTakenBranchAfterTraining)
{
    TraceCacheFetch tc(cfg);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
        {kC + 4, OpClass::IntAlu, false, 0},
        {kC + 8, OpClass::IntAlu, false, 0},
        {kC + 12, OpClass::IntAlu, false, 0},
    });
    // Cold: miss; the sequential walk mispredicts the cold taken
    // branch, but the fill unit still records the full actual-path
    // line and the MBP trains the branch toward taken.
    FetchOutcome cold = form(tc, stream);
    EXPECT_TRUE(cold.mispredict);
    EXPECT_EQ(tc.fills(), 1u);
    // Warm: the MBP now predicts taken, the vector matches the
    // line's actual outcomes, and delivery crosses the branch in
    // one cycle -- past what any paper scheme could align.
    FetchOutcome warm = form(tc, stream);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(warm.delivered, 6);
    EXPECT_EQ(warm.stop, FetchStop::StreamEnd);
    EXPECT_FALSE(warm.mispredict);
}

TEST_F(TraceCacheTest, WrongVectorBitStopsAtBranchAndRetrains)
{
    TraceCacheFetch tc(cfg);
    auto taken = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    form(tc, taken); // miss, fill, train toward taken
    form(tc, taken); // hit
    ASSERT_EQ(tc.hits(), 1u);

    // Same start PC but the branch now falls through: the predicted
    // vector still selects the stale taken-path line, and the wrong
    // bit surfaces as a fetch mispredict at the branch.
    auto not_taken = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, false, 0},
        {kA + 8, OpClass::IntAlu, false, 0},
    });
    FetchOutcome out = form(tc, not_taken);
    EXPECT_EQ(tc.hits(), 2u);
    EXPECT_EQ(out.delivered, 2); // up to and including the branch
    EXPECT_EQ(out.stop, FetchStop::Mispredict);
    EXPECT_TRUE(out.mispredict);
    // The mispredicted branch still trained the MBP (toward
    // not-taken), exactly once per delivered dynamic branch.
    EXPECT_EQ(tc.mbp().trained(), 3u);
}

TEST_F(TraceCacheTest, PartialTraceDeliveryOnWindowPressure)
{
    TraceCacheFetch tc(cfg);
    auto stream = seqRun(kA, 8);
    form(tc, stream); // fill an 8-inst line
    FetchOutcome out = form(tc, stream, /*window_space=*/3);
    EXPECT_EQ(out.delivered, 3);
    EXPECT_EQ(out.stop, FetchStop::WindowFull);
    EXPECT_EQ(tc.partialHits(), 1u);
}

TEST_F(TraceCacheTest, SpecDepthGatesHitPath)
{
    TraceCacheFetch tc(cfg);
    auto stream = test::makeStream({
        {kA, OpClass::CondBranch, false, 0},
        {kA + 4, OpClass::IntAlu, false, 0},
        {kA + 8, OpClass::IntAlu, false, 0},
    });
    form(tc, stream); // miss + fill (not-taken branch line)
    FetchOutcome out =
        form(tc, stream, /*window_space=*/64, /*spec_headroom=*/0);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(out.delivered, 0);
    EXPECT_EQ(out.stop, FetchStop::SpecDepth);
}

TEST_F(TraceCacheTest, ReturnTerminatesFill)
{
    TraceCacheFetch tc(cfg);
    auto stream = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::Return, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    form(tc, stream); // fill stops before the return: 1-inst line
    FetchOutcome out = form(tc, stream);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(out.delivered, 1);
    EXPECT_EQ(out.stop, FetchStop::BlockEnd); // line exhausted
}

TEST_F(TraceCacheTest, RefilledPathIsNotDuplicated)
{
    // A tiny MBP table makes two branch PCs alias one counter, so
    // training the second branch flips the first's prediction and
    // forces a re-miss on an already-cached actual path.
    cfg.mbpEntries = 64;
    TraceCacheFetch tc(cfg);
    const std::uint64_t kAlias = kA + 4 + 64 * kInstBytes;
    auto taken = test::makeStream({
        {kA, OpClass::IntAlu, false, 0},
        {kA + 4, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
    });
    auto alias = test::makeStream({
        {kAlias, OpClass::CondBranch, false, 0},
        {kAlias + 4, OpClass::IntAlu, false, 0},
    });
    form(tc, taken); // miss, fill, counter -> taken
    ASSERT_EQ(tc.fills(), 1u);
    form(tc, alias); // miss, fill, aliased counter -> not-taken
    form(tc, alias); // hit; counter now firmly not-taken
    ASSERT_EQ(tc.fills(), 2u);
    // The flipped prediction no longer matches the cached taken-path
    // line, so this misses -- but the fill unit finds the identical
    // (pc, outcomes) line already present and must not duplicate it.
    form(tc, taken);
    EXPECT_EQ(tc.misses(), 3u);
    EXPECT_EQ(tc.fills(), 2u);
}

TEST(MultiBranchPredictor, CountersStartWeaklyNotTaken)
{
    MultiBranchPredictor mbp(64, 4);
    EXPECT_FALSE(mbp.predictTaken(kA));
    auto stream = test::makeStream({
        {kA, OpClass::CondBranch, true, kC},
    });
    mbp.train(stream[0]);
    EXPECT_TRUE(mbp.predictTaken(kA)); // 1 -> 2: weakly taken
    EXPECT_EQ(mbp.trained(), 1u);
    EXPECT_EQ(mbp.trainedWrong(), 1u); // predicted NT, was taken
}

TEST(MultiBranchPredictor, VectorCoversUpcomingBranchesInOrder)
{
    MultiBranchPredictor mbp(64, 2);
    auto t0 = test::makeStream({{kA, OpClass::CondBranch, true, kC}});
    mbp.train(t0[0]);
    mbp.train(t0[0]); // counter saturating toward taken

    auto stream = test::makeStream({
        {kA, OpClass::CondBranch, true, kC},
        {kC, OpClass::IntAlu, false, 0},
        {kC + 4, OpClass::CondBranch, false, 0},
        {kC + 8, OpClass::CondBranch, true, kA},
    });
    BranchVector vec = mbp.predict(
        stream.data(), static_cast<int>(stream.size()), 16);
    EXPECT_EQ(vec.count, 2); // width-limited to maxBranches
    EXPECT_TRUE(vec.taken(0));
    EXPECT_FALSE(vec.taken(1)); // untrained: weakly not-taken
}

TEST(TraceCacheSession, EndToEndRunIsDeterministic)
{
    RunConfig config;
    config.benchmark = "compress";
    config.machine = MachineModel::P112;
    config.scheme = SchemeKind::TraceCache;
    config.maxRetired = 8000;
    Session first, second;
    RunResult a = first.run(config);
    RunResult b = second.run(config);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.retired, b.counters.retired);
    EXPECT_EQ(a.counters.mispredicts, b.counters.mispredicts);
    EXPECT_GT(a.ipc(), 0.0);
}

TEST(TraceCacheSession, BeatsSequentialFetchOnWideMachine)
{
    // The whole point of the mechanism: on a 12-issue machine the
    // trace cache supplies instructions past taken branches that the
    // single-block sequential scheme cannot.
    Session session;
    RunConfig tc_config;
    tc_config.benchmark = "compress";
    tc_config.machine = MachineModel::P112;
    tc_config.scheme = SchemeKind::TraceCache;
    tc_config.maxRetired = 20000;
    RunConfig seq_config = tc_config;
    seq_config.scheme = SchemeKind::Sequential;
    RunResult tc = session.run(tc_config);
    RunResult seq = session.run(seq_config);
    EXPECT_GT(tc.eir(), seq.eir());
}

} // anonymous namespace
} // namespace fetchsim
