/**
 * @file
 * Tests for the experiment driver: the Session workload cache, run
 * determinism, configuration plumbing, and the plan/engine execution
 * path that replaced the pre-Session free functions.
 */

#include <gtest/gtest.h>

#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/summary.h"

namespace fetchsim
{
namespace
{

RunConfig
smallConfig(const char *benchmark, MachineModel machine,
            SchemeKind scheme)
{
    RunConfig config;
    config.benchmark = benchmark;
    config.machine = machine;
    config.scheme = scheme;
    config.maxRetired = 8000;
    return config;
}

TEST(Experiment, LayoutNames)
{
    EXPECT_STREQ(layoutName(LayoutKind::Unordered), "unordered");
    EXPECT_STREQ(layoutName(LayoutKind::Reordered), "reordered");
    EXPECT_STREQ(layoutName(LayoutKind::PadAll), "pad-all");
    EXPECT_STREQ(layoutName(LayoutKind::PadTrace), "pad-trace");
}

TEST(Experiment, DefaultBudgetPositive)
{
    EXPECT_GT(defaultDynInsts(), 0u);
}

TEST(Session, RunIsDeterministic)
{
    Session session;
    RunConfig config =
        smallConfig("compress", MachineModel::P14,
                    SchemeKind::CollapsingBuffer);
    RunResult a = session.run(config);
    RunResult b = session.run(config);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.retired, b.counters.retired);
    EXPECT_EQ(a.counters.mispredicts, b.counters.mispredicts);
}

TEST(Session, RunsAreSessionIndependent)
{
    // Two separate Sessions (separate caches) produce bit-identical
    // results: nothing about a run depends on cache history.
    Session first, second;
    RunConfig config = smallConfig("eqntott", MachineModel::P18,
                                   SchemeKind::Sequential);
    RunResult a = first.run(config);
    RunResult b = second.run(config);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.delivered, b.counters.delivered);
}

TEST(Session, WorkloadIsCached)
{
    Session session;
    EXPECT_EQ(session.cachedWorkloads(), 0u);
    const Workload &a =
        session.workload("compress", LayoutKind::Unordered);
    const Workload &b =
        session.workload("compress", LayoutKind::Unordered);
    EXPECT_EQ(&a, &b); // same object: no regeneration
    EXPECT_EQ(session.cachedWorkloads(), 1u);
}

TEST(Session, ReferencesStayStableAsCacheGrows)
{
    // The documented lifetime contract: references returned by
    // workload() remain valid (same address) for the Session's
    // lifetime, however many entries are added after them.
    Session session;
    const Workload &first =
        session.workload("compress", LayoutKind::Unordered);
    const Program *program = &first.program;
    session.workload("eqntott", LayoutKind::Unordered);
    session.workload("li", LayoutKind::Reordered);
    session.workload("compress", LayoutKind::PadAll, 16);
    const Workload &again =
        session.workload("compress", LayoutKind::Unordered);
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(program, &again.program);
    EXPECT_EQ(session.cachedWorkloads(), 4u);
}

TEST(Session, PaddedLayoutsAreBlockSizeSpecific)
{
    Session session;
    const Workload &b16 =
        session.workload("compress", LayoutKind::PadAll, 16);
    const Workload &b32 =
        session.workload("compress", LayoutKind::PadAll, 32);
    EXPECT_NE(&b16, &b32);
    EXPECT_NE(b16.program.totalNops(), b32.program.totalNops());
}

TEST(Session, BlockSizeIgnoredForUnpaddedLayouts)
{
    // Only the padded layouts key on the block size; for the others
    // any block_bytes value maps to the same entry.
    Session session;
    const Workload &plain =
        session.workload("compress", LayoutKind::Unordered);
    const Workload &with_block =
        session.workload("compress", LayoutKind::Unordered, 64);
    EXPECT_EQ(&plain, &with_block);
    EXPECT_EQ(session.cachedWorkloads(), 1u);
}

TEST(Session, ReorderedWorkloadDiffersFromUnordered)
{
    Session session;
    const Workload &u =
        session.workload("eqntott", LayoutKind::Unordered);
    const Workload &r =
        session.workload("eqntott", LayoutKind::Reordered);
    EXPECT_NE(u.program.layoutOrder(), r.program.layoutOrder());
    // Same CFG size either way.
    EXPECT_EQ(u.program.numBlocks(), r.program.numBlocks());
}

TEST(Session, ResultCarriesConfigBack)
{
    Session session;
    RunConfig config = smallConfig("li", MachineModel::P18,
                                   SchemeKind::Sequential);
    RunResult result = session.run(config);
    EXPECT_EQ(result.config.benchmark, "li");
    EXPECT_EQ(result.config.machine, MachineModel::P18);
    EXPECT_GE(result.counters.retired, 8000u);
    EXPECT_GT(result.ipc(), 0.0);
}

TEST(Experiment, NameListsMatchPaperSuites)
{
    EXPECT_EQ(integerNames().size(), 9u);
    EXPECT_EQ(fpNames().size(), 6u);
    EXPECT_EQ(integerNames().front(), "bison");
    EXPECT_EQ(fpNames().front(), "doduc");
}

TEST(SessionDeath, UnknownBenchmarkIsFatal)
{
    RunConfig config = smallConfig("doom", MachineModel::P14,
                                   SchemeKind::Sequential);
    Session session;
    EXPECT_THROW(session.run(config), SimException);
    try {
        session.run(config);
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("unknown benchmark"),
                  std::string::npos);
    }
}

// --------------------------------------------------------------------
// Plan + engine execution path.  This is the API the removed
// pre-Session free functions migrated to; these tests pin down the
// equivalences the old wrapper tests asserted.
// --------------------------------------------------------------------

TEST(PlanEngine, EngineRunMatchesSessionRuns)
{
    const std::vector<std::string> names = {"compress", "eqntott"};
    Session session;
    ExperimentPlan plan;
    plan.benchmarks(names)
        .machine(MachineModel::P14)
        .scheme(SchemeKind::Perfect)
        .layout(LayoutKind::Unordered)
        .maxRetired(8000);
    SweepOptions options;
    options.threads = 1;
    SweepEngine engine(session, options);
    SuiteResult suite = makeSuite(engine.run(plan).runs);

    ASSERT_EQ(suite.runs.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        Session fresh;
        RunResult direct =
            fresh.run(smallConfig(names[i].c_str(),
                                  MachineModel::P14,
                                  SchemeKind::Perfect));
        EXPECT_EQ(suite.runs[i].config.benchmark, names[i]);
        EXPECT_EQ(suite.runs[i].counters.cycles,
                  direct.counters.cycles);
        EXPECT_EQ(suite.runs[i].counters.retired,
                  direct.counters.retired);
    }
}

TEST(PlanEngine, MakeSuiteAggregatesHarmonicMean)
{
    Session session;
    ExperimentPlan plan;
    plan.benchmarks({"compress", "eqntott"})
        .machine(MachineModel::P14)
        .scheme(SchemeKind::Perfect)
        .maxRetired(8000);
    SweepEngine engine(session);
    SuiteResult suite = makeSuite(engine.run(plan).runs);
    ASSERT_EQ(suite.runs.size(), 2u);
    std::vector<double> ipcs = {suite.runs[0].ipc(),
                                suite.runs[1].ipc()};
    EXPECT_NEAR(suite.hmeanIpc, harmonicMean(ipcs), 1e-12);
}

} // anonymous namespace
} // namespace fetchsim
