/**
 * @file
 * Tests for the experiment driver (sim/experiment.h): caching,
 * determinism, suite aggregation, and configuration plumbing.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "stats/summary.h"

namespace fetchsim
{
namespace
{

RunConfig
smallConfig(const char *benchmark, MachineModel machine,
            SchemeKind scheme)
{
    RunConfig config;
    config.benchmark = benchmark;
    config.machine = machine;
    config.scheme = scheme;
    config.maxRetired = 8000;
    return config;
}

TEST(Experiment, LayoutNames)
{
    EXPECT_STREQ(layoutName(LayoutKind::Unordered), "unordered");
    EXPECT_STREQ(layoutName(LayoutKind::Reordered), "reordered");
    EXPECT_STREQ(layoutName(LayoutKind::PadAll), "pad-all");
    EXPECT_STREQ(layoutName(LayoutKind::PadTrace), "pad-trace");
}

TEST(Experiment, DefaultBudgetPositive)
{
    EXPECT_GT(defaultDynInsts(), 0u);
}

TEST(Experiment, RunIsDeterministic)
{
    RunConfig config =
        smallConfig("compress", MachineModel::P14,
                    SchemeKind::CollapsingBuffer);
    RunResult a = runExperiment(config);
    RunResult b = runExperiment(config);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.retired, b.counters.retired);
    EXPECT_EQ(a.counters.mispredicts, b.counters.mispredicts);
}

TEST(Experiment, PreparedWorkloadIsCached)
{
    const Workload &a =
        preparedWorkload("compress", LayoutKind::Unordered);
    const Workload &b =
        preparedWorkload("compress", LayoutKind::Unordered);
    EXPECT_EQ(&a, &b); // same object: no regeneration
}

TEST(Experiment, PaddedLayoutsAreBlockSizeSpecific)
{
    const Workload &b16 =
        preparedWorkload("compress", LayoutKind::PadAll, 16);
    const Workload &b32 =
        preparedWorkload("compress", LayoutKind::PadAll, 32);
    EXPECT_NE(&b16, &b32);
    EXPECT_NE(b16.program.totalNops(), b32.program.totalNops());
}

TEST(Experiment, ReorderedWorkloadDiffersFromUnordered)
{
    const Workload &u =
        preparedWorkload("eqntott", LayoutKind::Unordered);
    const Workload &r =
        preparedWorkload("eqntott", LayoutKind::Reordered);
    EXPECT_NE(u.program.layoutOrder(), r.program.layoutOrder());
    // Same CFG size either way.
    EXPECT_EQ(u.program.numBlocks(), r.program.numBlocks());
}

TEST(Experiment, ResultCarriesConfigBack)
{
    RunConfig config = smallConfig("li", MachineModel::P18,
                                   SchemeKind::Sequential);
    RunResult result = runExperiment(config);
    EXPECT_EQ(result.config.benchmark, "li");
    EXPECT_EQ(result.config.machine, MachineModel::P18);
    EXPECT_GE(result.counters.retired, 8000u);
    EXPECT_GT(result.ipc(), 0.0);
}

TEST(Experiment, SuiteAggregatesHarmonicMean)
{
    std::vector<std::string> names = {"compress", "eqntott"};
    SuiteResult suite =
        runSuite(names, MachineModel::P14, SchemeKind::Perfect,
                 LayoutKind::Unordered, 8000);
    ASSERT_EQ(suite.runs.size(), 2u);
    std::vector<double> ipcs = {suite.runs[0].ipc(),
                                suite.runs[1].ipc()};
    EXPECT_NEAR(suite.hmeanIpc, harmonicMean(ipcs), 1e-12);
}

TEST(Experiment, NameListsMatchPaperSuites)
{
    EXPECT_EQ(integerNames().size(), 9u);
    EXPECT_EQ(fpNames().size(), 6u);
    EXPECT_EQ(integerNames().front(), "bison");
    EXPECT_EQ(fpNames().front(), "doduc");
}

TEST(ExperimentDeath, UnknownBenchmarkIsFatal)
{
    RunConfig config = smallConfig("doom", MachineModel::P14,
                                   SchemeKind::Sequential);
    EXPECT_EXIT(runExperiment(config),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

} // anonymous namespace
} // namespace fetchsim
