/**
 * @file
 * Tests for the compiler-side passes: edge profiling, trace
 * selection, code reordering (trace layout), and nop padding.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/code_layout.h"
#include "compiler/nop_padding.h"
#include "compiler/profile.h"
#include "compiler/trace_selection.h"
#include "exec/branch_census.h"
#include "exec/executor.h"
#include "test_util.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

ProfileOptions
smallProfile(std::uint64_t insts = 5000)
{
    ProfileOptions options;
    options.instsPerInput = insts;
    return options;
}

/** Execute and record the visited-block sequence. */
std::vector<BlockId>
blockSequence(const Workload &wl, int input, int n)
{
    Executor exec(wl, input);
    DynInst di;
    std::vector<BlockId> seq;
    BlockId last = kNoBlock;
    for (int i = 0; i < n; ++i) {
        exec.next(di);
        if (di.block != last) {
            seq.push_back(di.block);
            last = di.block;
        }
    }
    return seq;
}

TEST(Profile, CountsMatchHammockBias)
{
    Workload wl = test::hammockWorkload(2, 2, 0.9);
    EdgeProfile profile = collectProfile(wl, smallProfile());
    // Head is block 0, clause block 1, join block 2.
    EXPECT_GT(profile.blockCount[0], 0u);
    EXPECT_GT(profile.takenCount[0], profile.notTakenCount[0]);
    // Clause executes once per not-taken outcome.
    EXPECT_EQ(profile.blockCount[1], profile.notTakenCount[0]);
}

TEST(Profile, EdgeWeightsPartitionBlockCount)
{
    Workload wl = test::hammockWorkload(2, 2, 0.7);
    EdgeProfile profile = collectProfile(wl, smallProfile());
    const BasicBlock &head = wl.program.block(0);
    // Each profiling input may end mid-block, so block entries can
    // lead resolved branch outcomes by at most one per input.
    const std::uint64_t resolved =
        profile.edgeWeight(head, head.takenTarget) +
        profile.edgeWeight(head, head.fallThrough);
    EXPECT_LE(profile.blockCount[0] - resolved,
              static_cast<std::uint64_t>(kNumTrainInputs));
    EXPECT_NEAR(profile.edgeProb(head, head.takenTarget), 0.7, 0.1);
}

TEST(Profile, NonSuccessorHasZeroWeight)
{
    Workload wl = test::hammockWorkload(2, 2, 0.7);
    EdgeProfile profile = collectProfile(wl, smallProfile());
    const BasicBlock &clause = wl.program.block(1);
    EXPECT_EQ(profile.edgeWeight(clause, 0), 0u);
}

TEST(Profile, UsesOnlyTrainingInputs)
{
    // Profiles from 1 vs 5 inputs differ (different behaviour
    // streams), demonstrating per-input evaluation.
    Workload wl = test::hammockWorkload(2, 2, 0.5);
    ProfileOptions one = smallProfile();
    one.numInputs = 1;
    EdgeProfile p1 = collectProfile(wl, one);
    EdgeProfile p5 = collectProfile(wl, smallProfile());
    EXPECT_LT(p1.takenCount[0], p5.takenCount[0]);
}

TEST(TraceSelection, CoversEveryBlockExactlyOnce)
{
    Workload wl = generateWorkload(benchmarkByName("compress"));
    EdgeProfile profile = collectProfile(wl, smallProfile(20000));
    auto traces = selectTraces(wl.program, profile);
    std::set<BlockId> seen;
    std::size_t total = 0;
    for (const Trace &trace : traces) {
        EXPECT_FALSE(trace.blocks.empty());
        for (BlockId b : trace.blocks) {
            EXPECT_TRUE(seen.insert(b).second) << "duplicate " << b;
            ++total;
        }
    }
    EXPECT_EQ(total, wl.program.numBlocks());
}

TEST(TraceSelection, TracesStayWithinOneFunction)
{
    Workload wl = generateWorkload(benchmarkByName("li"));
    EdgeProfile profile = collectProfile(wl, smallProfile(20000));
    auto traces = selectTraces(wl.program, profile);
    for (const Trace &trace : traces)
        for (BlockId b : trace.blocks)
            EXPECT_EQ(wl.program.block(b).func, trace.func);
}

TEST(TraceSelection, HotHammockPathGroupsHeadAndJoin)
{
    Workload wl = test::hammockWorkload(2, 2, 0.95);
    EdgeProfile profile = collectProfile(wl, smallProfile());
    auto traces = selectTraces(wl.program, profile);
    // The hot trace must contain head (0) directly followed by
    // join (2); the cold clause (1) lives elsewhere.
    bool found = false;
    for (const Trace &trace : traces) {
        for (std::size_t i = 0; i + 1 < trace.blocks.size(); ++i) {
            if (trace.blocks[i] == 0 && trace.blocks[i + 1] == 2)
                found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(TraceSelection, ThresholdSplitsBalancedBranches)
{
    Workload wl = test::hammockWorkload(2, 2, 0.5);
    EdgeProfile profile = collectProfile(wl, smallProfile());
    TraceOptions options;
    options.threshold = 0.9; // neither edge reaches 90%
    auto traces = selectTraces(wl.program, profile, options);
    // Head cannot extend: it seeds a singleton or head-only trace.
    for (const Trace &trace : traces) {
        if (trace.blocks.front() == 0)
            EXPECT_EQ(trace.blocks.size(), 1u);
    }
}

TEST(Reorder, SemanticsPreservedExactly)
{
    // The visited-block sequence (per input) must be identical
    // before and after reordering: layout changes timing, never
    // semantics.  Two visibility caveats: inserted/removed jumps can
    // make a formerly-empty block appear in the stream (or a
    // jump-only block vanish), and a fixed instruction budget
    // reaches slightly different depths.  So compare the common
    // prefix, filtered to blocks that carry real work in both
    // versions.
    Workload original = generateWorkload(benchmarkByName("eqntott"));
    Workload reordered = generateWorkload(benchmarkByName("eqntott"));
    reorderWorkload(reordered, smallProfile(20000));

    auto visibleInBoth = [&](BlockId b) {
        auto meaningful = [](const BasicBlock &bb) {
            for (const auto &inst : bb.body)
                if (inst.op != OpClass::Jump &&
                    inst.op != OpClass::Nop)
                    return true;
            return false;
        };
        return meaningful(original.program.block(b)) &&
               meaningful(reordered.program.block(b));
    };
    auto filter = [&](std::vector<BlockId> seq) {
        std::vector<BlockId> out;
        for (BlockId b : seq)
            if (visibleInBoth(b) &&
                (out.empty() || out.back() != b))
                out.push_back(b);
        return out;
    };

    auto before = filter(blockSequence(original, kEvalInput, 20000));
    auto after = filter(blockSequence(reordered, kEvalInput, 20000));
    const std::size_t common = std::min(before.size(), after.size());
    ASSERT_GT(common, 1000u);
    for (std::size_t i = 0; i < common; ++i)
        ASSERT_EQ(before[i], after[i]) << "at " << i;
}

TEST(Reorder, ReducesDynamicTakenBranches)
{
    Workload original = generateWorkload(benchmarkByName("sc"));
    Workload reordered = generateWorkload(benchmarkByName("sc"));
    reorderWorkload(reordered, smallProfile(30000));
    BranchCensus before =
        runBranchCensus(original, kEvalInput, 30000, 16);
    BranchCensus after =
        runBranchCensus(reordered, kEvalInput, 30000, 16);
    EXPECT_LT(after.takenTotal, before.takenTotal);
}

TEST(Reorder, HotHammockBranchGetsInverted)
{
    Workload wl = test::hammockWorkload(2, 2, 0.95);
    ReorderStats stats = reorderWorkload(wl, smallProfile());
    EXPECT_GE(stats.inverted, 1u);
    const BasicBlock &head = wl.program.block(0);
    EXPECT_TRUE(head.invertedSense);
    // After inversion the taken target is the (cold) clause.
    EXPECT_EQ(head.takenTarget, 1u);
}

TEST(Reorder, FallThroughAdjacencyInvariant)
{
    // After reordering, every fall-through successor must be the
    // next block in layout (that is what fall-through means).
    Workload wl = generateWorkload(benchmarkByName("espresso"));
    reorderWorkload(wl, smallProfile(20000));
    const Program &prog = wl.program;
    const auto &order = prog.layoutOrder();
    for (std::size_t i = 0; i < order.size(); ++i) {
        const BasicBlock &bb = prog.block(order[i]);
        const bool falls =
            bb.term == TermKind::FallThrough ||
            bb.term == TermKind::CondBranch;
        if (!falls)
            continue;
        ASSERT_LT(i + 1, order.size());
        EXPECT_EQ(bb.fallThrough, order[i + 1])
            << "block " << bb.id << " layout pos " << i;
    }
}

TEST(Reorder, ValidatesAndStaysEncodable)
{
    Workload wl = generateWorkload(benchmarkByName("gcc"));
    reorderWorkload(wl, smallProfile(20000));
    wl.program.validate();
    checkEncodable(wl.program);
}

TEST(Reorder, IsIdempotentOnSemantics)
{
    Workload once = generateWorkload(benchmarkByName("bison"));
    Workload twice = generateWorkload(benchmarkByName("bison"));
    reorderWorkload(once, smallProfile(10000));
    reorderWorkload(twice, smallProfile(10000));
    reorderWorkload(twice, smallProfile(10000)); // second pass
    auto a = blockSequence(once, kEvalInput, 10000);
    auto b = blockSequence(twice, kEvalInput, 10000);
    ASSERT_EQ(a, b);
}

TEST(Padding, PadAllAlignsEveryRealBlock)
{
    Workload wl = generateWorkload(benchmarkByName("compress"));
    padAll(wl, 16);
    const Program &prog = wl.program;
    const auto &order = prog.layoutOrder();
    // Every non-filler block must start at a block boundary.  Filler
    // blocks are pure-nop blocks inserted by the pass.
    for (std::size_t i = 0; i < order.size(); ++i) {
        const BasicBlock &bb = prog.block(order[i]);
        bool is_filler = !bb.body.empty();
        for (const auto &inst : bb.body)
            is_filler &= inst.op == OpClass::Nop;
        if (!is_filler && !bb.body.empty())
            EXPECT_EQ(bb.address % 16, 0u) << "block " << bb.id;
    }
}

TEST(Padding, SemanticsPreserved)
{
    Workload original = generateWorkload(benchmarkByName("li"));
    Workload padded = generateWorkload(benchmarkByName("li"));
    PaddingStats stats = padAll(padded, 16);
    EXPECT_GT(stats.nopsInserted, 0u);

    // Non-nop dynamic instruction streams match exactly.
    Executor ea(original, kEvalInput);
    Executor eb(padded, kEvalInput);
    DynInst da, db;
    for (int i = 0; i < 20000; ++i) {
        ea.next(da);
        do {
            eb.next(db);
        } while (db.si.op == OpClass::Nop);
        ASSERT_EQ(da.si.op, db.si.op) << "at " << i;
        ASSERT_EQ(da.block, db.block);
    }
}

TEST(Padding, StatsMatchProgramNopCount)
{
    Workload wl = generateWorkload(benchmarkByName("flex"));
    const std::uint64_t before = wl.program.totalInstructions();
    PaddingStats stats = padAll(wl, 32);
    EXPECT_EQ(stats.originalInsts, before);
    EXPECT_EQ(stats.nopsInserted, wl.program.totalNops());
    EXPECT_EQ(wl.program.totalInstructions(),
              before + stats.nopsInserted);
}

TEST(Padding, OverheadGrowsWithBlockSize)
{
    for (const char *name : {"compress", "espresso"}) {
        double last = -1.0;
        for (std::uint64_t bs : {16, 32, 64}) {
            Workload wl = generateWorkload(benchmarkByName(name));
            PaddingStats stats = padAll(wl, bs);
            EXPECT_GT(stats.percent(), last);
            last = stats.percent();
        }
    }
}

TEST(Padding, PadTraceIsMuchCheaperThanPadAll)
{
    Workload all = generateWorkload(benchmarkByName("eqntott"));
    PaddingStats pa = padAll(all, 16);

    Workload tr = generateWorkload(benchmarkByName("eqntott"));
    std::vector<Trace> traces;
    reorderWorkload(tr, smallProfile(20000), {}, &traces);
    PaddingStats pt = padTrace(tr, traces, 16);

    EXPECT_LT(pt.percent(), pa.percent() / 2.0);
}

TEST(Padding, ColdPathNopsRarelyExecute)
{
    // pad-trace: nops sit after trace-ending (likely-taken) exits,
    // so the executed-nop share is far below the static share.
    Workload wl = generateWorkload(benchmarkByName("compress"));
    std::vector<Trace> traces;
    reorderWorkload(wl, smallProfile(20000), {}, &traces);
    PaddingStats stats = padTrace(wl, traces, 32);
    ASSERT_GT(stats.nopsInserted, 0u);

    BranchCensus census = runBranchCensus(wl, kEvalInput, 30000, 32);
    const double executed_share =
        static_cast<double>(census.nops) /
        static_cast<double>(census.instructions);
    EXPECT_LT(executed_share, stats.percent() / 100.0);
}

} // anonymous namespace
} // namespace fetchsim
