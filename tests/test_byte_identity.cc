/**
 * @file
 * Byte-identity suite for the batch-kernel cycle loop.
 *
 * The hot-loop optimizations (docs/PERFORMANCE.md) are pure
 * engineering: they must not change a single counter bit.  This suite
 * pins that contract against golden fingerprints recorded from the
 * pre-optimization code:
 *
 *  - checkpoint lines (runKey + every RunCounters field) for a grid
 *    covering every registered fetch scheme, two machine models,
 *    every standalone direction predictor, the RAS, and a reordered
 *    layout -- asserted identical at 1 and 8 sweep threads and under
 *    replay off/mem/disk;
 *  - the metrics export (MetricRegistry::formatText) of an
 *    instrumented run;
 *  - zero steady-state heap allocations per cell (operator-new hook):
 *    once a Processor reaches its cycle loop, simulating must not
 *    touch the allocator.
 *
 * Regenerating the goldens (only valid for a behavior-preserving
 * baseline, e.g. when a new scheme is registered):
 *
 *     FETCHSIM_REGEN_GOLDEN=1 ./test_byte_identity
 */

#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fetch/scheme_registry.h"
#include "sim/checkpoint.h"
#include "sim/session.h"
#include "sim/sweep.h"

namespace fetchsim
{
namespace
{

// ------------------------------------------------------------------
// operator-new hook: counts every global allocation in this binary.
// Only the steady-state test reads it; the counter itself is
// allocation-free.
// ------------------------------------------------------------------
std::uint64_t g_news = 0;

} // anonymous namespace
} // namespace fetchsim

void *
operator new(std::size_t size)
{
    ++fetchsim::g_news;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace fetchsim
{
namespace
{

constexpr std::uint64_t kBudget = 20000;

std::string
goldenPath(const char *name)
{
    return std::string(FETCHSIM_TEST_DATA_DIR "/") + name;
}

bool
regenRequested()
{
    const char *env = std::getenv("FETCHSIM_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/**
 * The pinned identity grid: every registered scheme on two machine
 * models, plus ablation cells exercising each standalone direction
 * predictor, the RAS, and a non-default layout.
 */
std::vector<RunConfig>
identityGrid()
{
    std::vector<RunConfig> grid;
    for (const SchemeInfo &info :
         FetchSchemeRegistry::instance().schemes()) {
        for (MachineModel machine :
             {MachineModel::P14, MachineModel::P112}) {
            RunConfig config;
            config.benchmark = "eqntott";
            config.machine = machine;
            config.scheme = info.kind;
            config.maxRetired = kBudget;
            grid.push_back(config);
        }
    }
    for (PredictorKind kind :
         {PredictorKind::Gshare, PredictorKind::TwoLevel,
          PredictorKind::OracleDirection, PredictorKind::StaticBtfnt}) {
        RunConfig config;
        config.benchmark = "compress";
        config.machine = MachineModel::P14;
        config.scheme = SchemeKind::CollapsingBuffer;
        config.predictorKind = kind;
        config.maxRetired = kBudget;
        grid.push_back(config);
    }
    {
        RunConfig config;
        config.benchmark = "compress";
        config.machine = MachineModel::P112;
        config.scheme = SchemeKind::BankedSequential;
        config.useRas = true;
        config.maxRetired = kBudget;
        grid.push_back(config);
    }
    {
        RunConfig config;
        config.benchmark = "gcc";
        config.machine = MachineModel::P14;
        config.scheme = SchemeKind::TraceCache;
        config.layout = LayoutKind::Reordered;
        config.maxRetired = kBudget;
        grid.push_back(config);
    }
    return grid;
}

/** One checkpoint line per cell, in plan order. */
std::string
fingerprint(Session &session, int threads, ReplayPolicy policy)
{
    SweepOptions options;
    options.threads = threads;
    options.replay.policy = policy;
    SweepEngine engine(session, options);
    const std::vector<RunConfig> grid = identityGrid();
    const SweepResult sweep = engine.run(grid);

    std::string out;
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
        EXPECT_TRUE(sweep.cellOk(i)) << "cell " << i << " failed";
        out += checkpointLine(runKey(grid[i]),
                              sweep.runs[i].counters);
        out += '\n';
    }
    return out;
}

TEST(ByteIdentity, CheckpointLinesMatchGoldenAcrossThreadsAndReplay)
{
    Session session;
    const std::string base =
        fingerprint(session, 1, ReplayPolicy::Off);

    if (regenRequested()) {
        writeFile(goldenPath("golden_checkpoints.txt"), base);
        GTEST_SKIP() << "golden regenerated";
    }

    const std::string golden =
        readFile(goldenPath("golden_checkpoints.txt"));
    ASSERT_FALSE(golden.empty())
        << "missing golden fingerprints; run with "
           "FETCHSIM_REGEN_GOLDEN=1 on a known-good build";
    EXPECT_EQ(base, golden)
        << "counters drifted from the pre-optimization baseline";

    // The same grid must fingerprint identically at 8 threads and
    // under every replay policy (fresh Session per policy so each
    // run source path really executes).
    EXPECT_EQ(fingerprint(session, 8, ReplayPolicy::Off), golden);
    {
        Session mem_session;
        EXPECT_EQ(fingerprint(mem_session, 1, ReplayPolicy::InMemory),
                  golden);
        EXPECT_EQ(fingerprint(mem_session, 8, ReplayPolicy::InMemory),
                  golden);
    }
    {
        Session disk_session;
        EXPECT_EQ(
            fingerprint(disk_session, 8, ReplayPolicy::SpillToDisk),
            golden);
    }
}

TEST(ByteIdentity, MetricsExportMatchesGolden)
{
    Session session;
    RunConfig config;
    config.benchmark = "eqntott";
    config.machine = MachineModel::P14;
    config.scheme = SchemeKind::CollapsingBuffer;
    config.maxRetired = kBudget;

    MetricRegistry registry;
    RunInstrumentation inst;
    inst.metrics = &registry;
    session.run(config, inst);
    const std::string text = registry.formatText();

    if (regenRequested()) {
        writeFile(goldenPath("golden_metrics.txt"), text);
        GTEST_SKIP() << "golden regenerated";
    }
    const std::string golden = readFile(goldenPath("golden_metrics.txt"));
    ASSERT_FALSE(golden.empty())
        << "missing golden metrics; run with FETCHSIM_REGEN_GOLDEN=1 "
           "on a known-good build";
    EXPECT_EQ(text, golden);
}

/**
 * Zero steady-state allocations: once a cell's Processor is running
 * its cycle loop, neither the loop, the fetch walk, the predictors
 * nor the replay source may touch the global allocator.  Warm up
 * past the first run() call (lazy buffers fill there), then assert
 * the allocation counter is flat across a long stretch of cycles.
 */
TEST(ByteIdentity, SteadyStateRunsAllocationFree)
{
    Session session;
    // Replay mode: the steady-state contract covers the batch replay
    // fast path (the bench configuration).  Record the trace first.
    RunConfig config;
    config.benchmark = "eqntott";
    config.machine = MachineModel::P112;
    config.scheme = SchemeKind::CollapsingBuffer;
    config.maxRetired = kBudget;

    ReplayOptions replay;
    replay.policy = ReplayPolicy::InMemory;
    session.prepareReplay(config, replay);

    const Workload &wl = session.workload(
        config.benchmark, config.layout,
        makeMachine(config.machine).blockBytes);
    (void)wl;

    // Live-executor steady state.
    {
        MachineConfig cfg = makeMachine(config.machine);
        Executor exec(wl, config.input);
        Processor proc(exec, cfg,
                       FetchSchemeRegistry::instance().make(
                           config.scheme, cfg));
        proc.run(4000); // warm-up: lazy capacity fills happen here
        const std::uint64_t before = g_news;
        proc.run(16000);
        EXPECT_EQ(g_news - before, 0u)
            << "live cycle loop allocated in steady state";
    }

    // Replay fast-path steady state (every scheme, since each has
    // its own per-cycle kernel).
    for (const SchemeInfo &info :
         FetchSchemeRegistry::instance().schemes()) {
        MachineConfig cfg = makeMachine(config.machine);
        RunConfig cell = config;
        cell.scheme = info.kind;
        session.prepareReplay(cell, replay);
        // Reach into the replay cache the same way Session::run does:
        // run once to warm the cache, then measure a private
        // processor over the shared recording.
        Executor exec(wl, cell.input);
        DynTrace trace = recordStream(exec, kBudget + 4096);
        TraceReplaySource source(trace);
        Processor proc(source, cfg,
                       FetchSchemeRegistry::instance().make(
                           cell.scheme, cfg));
        proc.run(4000);
        const std::uint64_t before = g_news;
        proc.run(16000);
        EXPECT_EQ(g_news - before, 0u)
            << schemeName(info.kind)
            << " replay cycle loop allocated in steady state";
    }
}

} // anonymous namespace
} // namespace fetchsim
