/**
 * @file
 * Unit tests for the direct-mapped instruction cache.
 */

#include <gtest/gtest.h>

#include "cache/icache.h"

namespace fetchsim
{
namespace
{

TEST(ICache, ColdMissThenHit)
{
    ICache cache(1024, 16);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x100c)); // same block
    EXPECT_EQ(cache.accesses(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ICache, BlockGranularity)
{
    ICache cache(1024, 16);
    cache.access(0x1000);
    EXPECT_FALSE(cache.access(0x1010)); // next block: separate line
}

TEST(ICache, DirectMappedConflictEviction)
{
    ICache cache(1024, 16); // 64 sets
    const std::uint64_t a = 0x0;
    const std::uint64_t b = a + 1024; // same set, different tag
    EXPECT_FALSE(cache.access(a));
    EXPECT_FALSE(cache.access(b)); // evicts a
    EXPECT_FALSE(cache.access(a)); // a was evicted
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
}

TEST(ICache, ProbeHasNoSideEffects)
{
    ICache cache(1024, 16);
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.access(0x2000)); // still a miss: probe no fill
}

TEST(ICache, FlushInvalidatesEverything)
{
    ICache cache(1024, 16);
    cache.access(0x3000);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x3000));
}

TEST(ICache, ConsecutiveBlocksAlternateBanks)
{
    ICache cache(32 * 1024, 16, 2);
    EXPECT_NE(cache.bankOf(0x1000), cache.bankOf(0x1010));
    EXPECT_EQ(cache.bankOf(0x1000), cache.bankOf(0x1020));
}

TEST(ICache, GeometryHelpers)
{
    ICache cache(32 * 1024, 16);
    EXPECT_EQ(cache.numSets(), 2048u);
    EXPECT_EQ(cache.blockAlign(0x1234), 0x1230u);
    EXPECT_EQ(cache.blockNumber(0x1234), 0x123u);
    EXPECT_EQ(cache.sizeBytes(), 32u * 1024);
    EXPECT_EQ(cache.blockBytes(), 16u);
}

TEST(ICache, PaperGeometries)
{
    // P14 32KB/16B, P18 64KB/32B, P112 128KB/64B all construct.
    ICache p14(32 * 1024, 16);
    ICache p18(64 * 1024, 32);
    ICache p112(128 * 1024, 64);
    EXPECT_EQ(p14.numSets(), 2048u);
    EXPECT_EQ(p18.numSets(), 2048u);
    EXPECT_EQ(p112.numSets(), 2048u);
}

TEST(ICache, WorkingSetBiggerThanCacheThrashes)
{
    ICache cache(1024, 16); // 64 blocks capacity
    // Touch 128 distinct blocks twice: every access misses.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t b = 0; b < 128; ++b)
            cache.access(b * 16);
    EXPECT_EQ(cache.misses(), cache.accesses());
}

TEST(ICacheDeath, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(ICache(1000, 16), ::testing::ExitedWithCode(1),
                "powers of two");
    EXPECT_EXIT(ICache(1024, 24), ::testing::ExitedWithCode(1),
                "powers of two");
}

} // anonymous namespace
} // namespace fetchsim
