/**
 * @file
 * End-to-end "paper shape" tests: cheap versions of the paper's
 * headline claims, run on reduced budgets.  These guard the
 * reproduction itself: if a change to the simulator breaks the
 * qualitative results of the evaluation (scheme ordering, collapsing
 * buffer scalability, compiler-optimization effects), these fail.
 */

#include <gtest/gtest.h>

#include "exec/branch_census.h"
#include "sim/session.h"

namespace fetchsim
{
namespace
{

constexpr std::uint64_t kBudget = 15000;

/** One Session for the whole binary, so workloads prepare once. */
Session &
testSession()
{
    static Session session;
    return session;
}

double
ipcOf(const char *benchmark, MachineModel machine, SchemeKind scheme,
      LayoutKind layout = LayoutKind::Unordered)
{
    RunConfig config;
    config.benchmark = benchmark;
    config.machine = machine;
    config.scheme = scheme;
    config.layout = layout;
    config.maxRetired = kBudget;
    return testSession().run(config).ipc();
}

/** Scheme ordering per benchmark and machine (paper Figure 9). */
class SchemeOrdering
    : public ::testing::TestWithParam<
          std::tuple<const char *, MachineModel>>
{
};

TEST_P(SchemeOrdering, SequentialNeverBeatsPerfect)
{
    const auto [name, machine] = GetParam();
    const double seq = ipcOf(name, machine, SchemeKind::Sequential);
    const double perfect = ipcOf(name, machine, SchemeKind::Perfect);
    // Strict dominance holds in expectation; allow 2% noise since
    // BTB/cache state paths differ slightly between schemes.
    EXPECT_LE(seq, perfect * 1.02) << name;
}

TEST_P(SchemeOrdering, CollapsingBufferTracksPerfect)
{
    const auto [name, machine] = GetParam();
    const double cb =
        ipcOf(name, machine, SchemeKind::CollapsingBuffer);
    const double perfect = ipcOf(name, machine, SchemeKind::Perfect);
    // Figure 10's claim: collapsing buffer holds >= ~90% of perfect.
    EXPECT_GE(cb, 0.85 * perfect) << name;
}

TEST_P(SchemeOrdering, InterleavedImprovesOnSequential)
{
    const auto [name, machine] = GetParam();
    const double seq = ipcOf(name, machine, SchemeKind::Sequential);
    const double inter =
        ipcOf(name, machine, SchemeKind::InterleavedSequential);
    EXPECT_GE(inter, seq * 0.98) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Representative, SchemeOrdering,
    ::testing::Combine(
        ::testing::Values("eqntott", "compress", "nasa7", "wave5"),
        ::testing::Values(MachineModel::P14, MachineModel::P112)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char *, MachineModel>> &info) {
        return std::string(std::get<0>(info.param)) + "_" +
               machineName(std::get<1>(info.param));
    });

/** The headline claims must hold per-benchmark over the full suite. */
class FullSuiteShape
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FullSuiteShape, CollapsingTracksPerfectAtTwelveIssue)
{
    const char *name = GetParam();
    const double cb =
        ipcOf(name, MachineModel::P112, SchemeKind::CollapsingBuffer);
    const double perfect =
        ipcOf(name, MachineModel::P112, SchemeKind::Perfect);
    EXPECT_GE(cb, 0.80 * perfect) << name;
    EXPECT_LE(cb, perfect * 1.02) << name;
}

TEST_P(FullSuiteShape, BankedBetweenInterleavedAndCollapsing)
{
    const char *name = GetParam();
    const double inter = ipcOf(name, MachineModel::P112,
                               SchemeKind::InterleavedSequential);
    const double banked = ipcOf(name, MachineModel::P112,
                                SchemeKind::BankedSequential);
    const double cb =
        ipcOf(name, MachineModel::P112, SchemeKind::CollapsingBuffer);
    // 3% tolerance: bank conflicts can rarely cost banked a touch
    // against interleaved on loop-free stretches.
    EXPECT_GE(banked, inter * 0.97) << name;
    EXPECT_LE(banked, cb * 1.03) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, FullSuiteShape,
    ::testing::Values("bison", "compress", "eqntott", "espresso",
                      "flex", "gcc", "li", "mpeg_play", "sc", "doduc",
                      "mdljdp2", "nasa7", "ora", "tomcatv", "wave5"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(PaperShape, AlignmentGapWidensWithIssueRate)
{
    // Figure 3: sequential/perfect ratio shrinks from P14 to P112.
    auto ratio = [&](MachineModel m) {
        return ipcOf("eqntott", m, SchemeKind::Sequential) /
               ipcOf("eqntott", m, SchemeKind::Perfect);
    };
    EXPECT_GT(ratio(MachineModel::P14), ratio(MachineModel::P112));
}

TEST(PaperShape, IntraBlockShareGrowsWithBlockSize)
{
    // Table 2's headline: larger blocks capture more branch targets.
    const Workload &wl =
        testSession().workload("eqntott", LayoutKind::Unordered);
    BranchCensus c16 = runBranchCensus(wl, kEvalInput, 30000, 16);
    BranchCensus c64 = runBranchCensus(wl, kEvalInput, 30000, 64);
    EXPECT_GT(c64.intraBlockPercent(), c16.intraBlockPercent());
    EXPECT_GT(c64.intraBlockPercent(), 20.0);
}

TEST(PaperShape, NasaSevenHasNoIntraBlockBranches)
{
    const Workload &wl =
        testSession().workload("nasa7", LayoutKind::Unordered);
    BranchCensus census = runBranchCensus(wl, kEvalInput, 30000, 64);
    EXPECT_LT(census.intraBlockPercent(), 2.0);
}

TEST(PaperShape, ReorderingLiftsSequential)
{
    // Figure 12: code reordering improves the weakest scheme most.
    const double unordered = ipcOf("eqntott", MachineModel::P112,
                                   SchemeKind::Sequential);
    const double reordered =
        ipcOf("eqntott", MachineModel::P112, SchemeKind::Sequential,
              LayoutKind::Reordered);
    EXPECT_GT(reordered, unordered);
}

TEST(PaperShape, ReorderingCutsTakenBranches)
{
    // Table 3 over two representative benchmarks.
    for (const char *name : {"compress", "li"}) {
        const Workload &u =
            testSession().workload(name, LayoutKind::Unordered);
        const Workload &r =
            testSession().workload(name, LayoutKind::Reordered);
        BranchCensus before =
            runBranchCensus(u, kEvalInput, 30000, 16);
        BranchCensus after =
            runBranchCensus(r, kEvalInput, 30000, 16);
        EXPECT_LT(after.takenPer100(), before.takenPer100() * 0.95)
            << name;
    }
}

TEST(PaperShape, ShifterPenaltyErasesCollapsingEdge)
{
    // Figure 11: at a 3-cycle penalty the collapsing buffer is
    // roughly at banked sequential's level, not above it by much.
    RunConfig config;
    config.benchmark = "eqntott";
    config.machine = MachineModel::P14;
    config.maxRetired = kBudget;

    config.scheme = SchemeKind::BankedSequential;
    const double banked = testSession().run(config).ipc();

    config.scheme = SchemeKind::CollapsingBuffer;
    config.cbImpl = CollapsingBufferFetch::Impl::Shifter;
    const double shifter = testSession().run(config).ipc();

    config.cbImpl = CollapsingBufferFetch::Impl::Crossbar;
    const double crossbar = testSession().run(config).ipc();

    EXPECT_LT(shifter, crossbar);
    EXPECT_LT(shifter, banked * 1.05);
}

TEST(PaperShape, PadAllHurtsAtLargeBlocks)
{
    // Figure 13: pad-all's code expansion destroys locality at P112.
    const double plain = ipcOf("gcc", MachineModel::P112,
                               SchemeKind::Sequential);
    const double padded = ipcOf("gcc", MachineModel::P112,
                                SchemeKind::Sequential,
                                LayoutKind::PadAll);
    EXPECT_LT(padded, plain * 1.02);
}

TEST(PaperShape, FpSchemesConvergeOnLoopCode)
{
    // nasa7: pure long loops; banked and collapsing are nearly
    // indistinguishable (no short branches to collapse).
    const double banked = ipcOf("nasa7", MachineModel::P112,
                                SchemeKind::BankedSequential);
    const double cb = ipcOf("nasa7", MachineModel::P112,
                            SchemeKind::CollapsingBuffer);
    EXPECT_NEAR(cb, banked, 0.1 * banked);
}

} // anonymous namespace
} // namespace fetchsim
