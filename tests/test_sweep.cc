/**
 * @file
 * Parameterized invariant sweep: every (scheme x machine) point runs
 * a real generated benchmark and must satisfy the simulator's global
 * invariants.  Also: analytic checks for the stand-alone branch
 * census.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "exec/branch_census.h"
#include "sim/session.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

Session &
testSession()
{
    static Session session;
    return session;
}

TEST(BranchCensus, HammockAnalytic)
{
    // head: 1 alu + branch (slots 0..1 from the base), clause: 2
    // alu, join: 1 alu + ret.  Branch at offset 1, join at offset 4:
    // same 32B block always (base is block-aligned), never the same
    // 16B block (offsets 1 and 4 straddle the 4-slot boundary).
    Workload wl = test::hammockWorkload(1, 2, 1.0);
    BranchCensus c16 = runBranchCensus(wl, kEvalInput, 5000, 16);
    BranchCensus c32 = runBranchCensus(wl, kEvalInput, 5000, 32);

    // Taken transfers: the hammock branch (always) and the return.
    EXPECT_GT(c16.condBranches, 0u);
    EXPECT_EQ(c16.condTaken, c16.condBranches);
    EXPECT_EQ(c16.intraBlock, 0u);
    // The whole 6-instruction program fits in one 32B block, so at
    // 32B every taken transfer (branch AND restart-return) is
    // intra-block.
    EXPECT_EQ(c32.intraBlock, c32.takenTotal);
    EXPECT_GT(c32.intraBlockPercent(), 99.0);
}

TEST(BranchCensus, CountsAreInputStable)
{
    const Workload &wl =
        testSession().workload("compress", LayoutKind::Unordered);
    BranchCensus a = runBranchCensus(wl, kEvalInput, 20000, 16);
    BranchCensus b = runBranchCensus(wl, kEvalInput, 20000, 16);
    EXPECT_EQ(a.takenTotal, b.takenTotal);
    EXPECT_EQ(a.intraBlock, b.intraBlock);
}

TEST(BranchCensusDeath, RejectsBadBlockSize)
{
    const Workload &wl =
        testSession().workload("compress", LayoutKind::Unordered);
    EXPECT_EXIT(runBranchCensus(wl, kEvalInput, 10, 24),
                ::testing::ExitedWithCode(1), "power of two");
}

/** Full cross product of schemes and machines on one benchmark. */
class SchemeMachineSweep
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, MachineModel>>
{
};

TEST_P(SchemeMachineSweep, GlobalInvariantsHold)
{
    const auto [scheme, machine] = GetParam();
    RunConfig config;
    config.benchmark = "espresso";
    config.machine = machine;
    config.scheme = scheme;
    config.maxRetired = 10000;
    RunResult result = testSession().run(config);
    const RunCounters &c = result.counters;
    const MachineConfig cfg = makeMachine(machine);

    // Progress and rate bounds.
    EXPECT_GE(c.retired, 10000u);
    EXPECT_GT(c.cycles, 0u);
    EXPECT_LE(result.ipc(), static_cast<double>(cfg.issueRate));
    EXPECT_LE(result.eir(),
              static_cast<double>(cfg.issueRate) * 1.0001);

    // Conservation: everything delivered is retired or in flight;
    // in-flight is bounded by the ROB.
    EXPECT_GE(c.delivered, c.retired);
    EXPECT_LE(c.delivered - c.retired,
              static_cast<std::uint64_t>(cfg.robSize));

    // Census sanity.
    EXPECT_LE(c.takenBranches, c.delivered);
    EXPECT_LE(c.intraBlockTaken, c.takenBranches);
    EXPECT_LE(c.mispredicts, c.condBranches);
    EXPECT_LE(c.icacheMisses, c.icacheAccesses);
    EXPECT_LE(c.btbHits, c.btbLookups);

    // Every cycle either delivered a group or counted as a stall.
    EXPECT_EQ(c.fetchGroups + c.stallCycles, c.cycles);
}

TEST_P(SchemeMachineSweep, RunsAreBitReproducible)
{
    const auto [scheme, machine] = GetParam();
    RunConfig config;
    config.benchmark = "wave5";
    config.machine = machine;
    config.scheme = scheme;
    config.maxRetired = 6000;
    RunResult a = testSession().run(config);
    RunResult b = testSession().run(config);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.delivered, b.counters.delivered);
    EXPECT_EQ(a.counters.mispredicts, b.counters.mispredicts);
    EXPECT_EQ(a.counters.icacheMisses, b.counters.icacheMisses);
    for (int i = 0; i < kNumFetchStops; ++i)
        EXPECT_EQ(a.counters.stops[i], b.counters.stops[i]);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, SchemeMachineSweep,
    ::testing::Combine(
        ::testing::Values(SchemeKind::Sequential,
                          SchemeKind::InterleavedSequential,
                          SchemeKind::BankedSequential,
                          SchemeKind::CollapsingBuffer,
                          SchemeKind::Perfect),
        ::testing::Values(MachineModel::P14, MachineModel::P18,
                          MachineModel::P112)),
    [](const ::testing::TestParamInfo<
        std::tuple<SchemeKind, MachineModel>> &info) {
        std::string name = schemeName(std::get<0>(info.param));
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name + "_" +
               machineName(std::get<1>(info.param));
    });

} // anonymous namespace
} // namespace fetchsim
