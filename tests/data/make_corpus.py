#!/usr/bin/env python3
"""Regenerate the corrupt-trace corpus under tests/data/.

Every ``corrupt_*.fstr`` file is a deliberately damaged FSTR trace
(src/exec/trace_file.h documents the format) that the reader must
reject with a structured SimException(Io) -- never an abort, a hang,
or a partial read that leaks a descriptor.  tests/test_ingest.cc walks
the corpus table-driven; this script records exactly how each file was
forged so the corpus can be audited or extended.

``mini_truncated.champsim.bin`` is the ChampSim fixture
(mini.champsim.bin) cut mid-record: strict imports must reject it,
lenient imports must count the partial tail and import the rest.

The script is deterministic -- re-running it reproduces every file
byte for byte.
"""

import pathlib
import struct

HERE = pathlib.Path(__file__).resolve().parent

# FSTR constants (src/exec/trace_file.h).
MAGIC = 0x52545346  # "FSTR"
VERSION = 2
FNV_OFFSET = 1469598103934665603
FNV_PRIME = 1099511628211
MASK = (1 << 64) - 1

# OpClass values (src/isa/opcode.h).
INT_ALU, COND_BRANCH = 0, 4


def fnv(hash_, data):
    for byte in data:
        hash_ = ((hash_ ^ byte) * FNV_PRIME) & MASK
    return hash_


def record(pc, target=0, op=INT_ALU, dest=1, src1=2, src2=3, imm=0,
           taken=0):
    """One 32-byte trace record plus its canonical hash bytes."""
    packed = struct.pack("<QQ4BiB7x", pc, target, op, dest, src1,
                         src2, imm, taken)
    hashed = struct.pack("<QQ4BiB", pc, target, op, dest, src1, src2,
                         imm, taken)
    return packed, hashed


def build_trace(records):
    """A complete, valid FSTR v2 file for the given records."""
    hash_ = FNV_OFFSET
    payload = b""
    for packed, hashed in records:
        payload += packed
        hash_ = fnv(hash_, hashed)
    header = struct.pack("<IIQQ", MAGIC, VERSION, len(records), hash_)
    return header + payload


def base_records():
    """Eight records: a short basic block ending in a taken branch,
    run twice."""
    out = []
    for rep in range(2):
        base = 0x1000 + rep * 0x40
        out.append(record(base))
        out.append(record(base + 4, imm=7))
        out.append(record(base + 8, dest=4, src1=1))
        out.append(record(base + 12, target=0x1000, op=COND_BRANCH,
                          taken=1 if rep == 0 else 0))
    return out


def emit(name, data):
    (HERE / name).write_bytes(data)
    print(f"{name}: {len(data)} bytes")


def main():
    valid = build_trace(base_records())

    # Header cut off before the v1-sized prefix is even complete.
    emit("corrupt_truncated_header.fstr", valid[:8])

    # Version field says v2 (24-byte header) but the file ends after
    # the 16 v1-header bytes: the hash field is missing.
    emit("corrupt_v2_header_truncated.fstr", valid[:16])

    # Header promises 8 records but the payload holds only 3: the
    # count-vs-file-size check must reject it at open, before any
    # caller sizes buffers from count().
    emit("corrupt_short_payload.fstr", valid[: 24 + 3 * 32])

    # Absurd length field (2**60 records); same open-time check.
    absurd = struct.pack("<IIQQ", MAGIC, VERSION, 1 << 60,
                         FNV_OFFSET) + valid[24:]
    emit("corrupt_absurd_count.fstr", absurd)

    # One bit flipped in the first record's pc: every record still
    # parses, but the running content hash cannot match the header
    # hash when the final record is consumed.
    flipped = bytearray(valid)
    flipped[24] ^= 0x01
    emit("corrupt_flipped_hash.fstr", bytes(flipped))

    # Not a trace at all (magic mismatch).
    emit("corrupt_bad_magic.fstr", b"JUNK" + valid[4:])

    # Unknown format version (7 is neither v1 nor v2).
    bad_version = struct.pack("<IIQQ", MAGIC, 7, 8,
                              FNV_OFFSET) + valid[24:]
    emit("corrupt_bad_version.fstr", bad_version)

    # Record with an op class past NumOpClasses; the header hash is
    # recomputed so only the impossible op byte is wrong.
    bad_records = base_records()
    bad_records[2] = record(0x1008, op=200)
    emit("corrupt_bad_op.fstr", build_trace(bad_records))

    # ChampSim fixture cut 30 bytes into nowhere: a partial 64-byte
    # input_instr tail.
    mini = (HERE / "mini.champsim.bin").read_bytes()
    assert len(mini) % 64 == 0 and len(mini) >= 128
    emit("mini_truncated.champsim.bin", mini[: len(mini) - 30])


if __name__ == "__main__":
    main()
