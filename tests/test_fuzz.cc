/**
 * @file
 * The property-based sweep fuzzer's own guarantees: scenario
 * derivation is deterministic and stays inside the documented
 * envelopes, the shrink ladder simplifies monotonically, reproducer
 * lines are replayable, and a small campaign runs clean and
 * reproducibly.  (The invariants the fuzzer asserts about the
 * simulator are its job; these tests assert the fuzzer itself.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "sim/fuzz.h"
#include "sim/session.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

TEST(FuzzScenarioGen, SameSeedSameScenario)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        const FuzzScenario a = makeFuzzScenario(seed, 0);
        const FuzzScenario b = makeFuzzScenario(seed, 0);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.machine, b.machine);
        EXPECT_EQ(a.schemes, b.schemes);
        EXPECT_EQ(a.layout, b.layout);
        EXPECT_EQ(a.maxRetired, b.maxRetired);
        EXPECT_EQ(a.input, b.input);
        EXPECT_EQ(a.spec.seed, b.spec.seed);
        EXPECT_EQ(a.spec.numFunctions, b.spec.numFunctions);
        EXPECT_EQ(a.spec.loopTripMax, b.spec.loopTripMax);
        EXPECT_EQ(a.base.specDepthOverride, b.base.specDepthOverride);
        EXPECT_EQ(a.base.btbEntriesOverride, b.base.btbEntriesOverride);
    }
}

TEST(FuzzScenarioGen, DifferentSeedsActuallyVary)
{
    std::set<std::uint64_t> budgets;
    std::set<int> machines;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const FuzzScenario s = makeFuzzScenario(seed, 0);
        budgets.insert(s.maxRetired);
        machines.insert(static_cast<int>(s.machine));
    }
    EXPECT_GT(budgets.size(), 10u);
    EXPECT_GT(machines.size(), 1u);
}

TEST(FuzzScenarioGen, EnvelopesHoldAcrossManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        const FuzzScenario s = makeFuzzScenario(seed, 0);
        SCOPED_TRACE("seed " + std::to_string(seed));

        // Program shape inside the generator's preconditions.
        EXPECT_GE(s.spec.numFunctions, 2);
        EXPECT_LE(s.spec.numFunctions, 16);
        EXPECT_GE(s.spec.minStmtsPerFunc, 2);
        EXPECT_LE(s.spec.maxStmtsPerFunc, 14);
        EXPECT_LE(s.spec.minStmtsPerFunc, s.spec.maxStmtsPerFunc);
        EXPECT_GE(s.spec.minBlockLen, 1);
        EXPECT_LE(s.spec.minBlockLen, s.spec.maxBlockLen);
        EXPECT_LE(s.spec.maxBlockLen, 16);
        EXPECT_LE(s.spec.fpFraction + s.spec.loadFraction +
                      s.spec.storeFraction,
                  1.0);
        EXPECT_LE(s.spec.hammockProb + s.spec.ifElseProb +
                      s.spec.loopProb + s.spec.callProb,
                  1.0);
        EXPECT_GE(s.spec.loopTripMin, 2);
        EXPECT_LE(s.spec.loopTripMax, 60);
        EXPECT_LE(s.spec.maxLoopNest, 3);

        // Plan envelope.
        EXPECT_GE(s.maxRetired, 600u);
        EXPECT_LE(s.maxRetired, 3000u);
        EXPECT_GE(s.input, 0);
        EXPECT_LE(s.input, kEvalInput);

        // Perfect leads, followed by distinct real schemes.
        ASSERT_GE(s.schemes.size(), 2u);
        EXPECT_EQ(s.schemes.front(), SchemeKind::Perfect);
        std::set<SchemeKind> uniq(s.schemes.begin(),
                                  s.schemes.end());
        EXPECT_EQ(uniq.size(), s.schemes.size());

        // Machine overrides: either defaults or inside the envelope.
        // Speculation depth 0 in particular must never be drawn --
        // config validation rejects it (the machine could never
        // fetch a conditional branch).
        EXPECT_NE(s.base.specDepthOverride, 0);
        if (s.base.specDepthOverride > 0) {
            EXPECT_LE(s.base.specDepthOverride, 4);
        }
        if (s.base.btbEntriesOverride >= 0) {
            EXPECT_GE(s.base.btbEntriesOverride, 16);
            EXPECT_LE(s.base.btbEntriesOverride, 512);
        }
        if (s.base.windowSizeOverride >= 0) {
            EXPECT_GE(s.base.windowSizeOverride, 8);
            EXPECT_LE(s.base.windowSizeOverride, 64);
        }
        if (s.base.missPenaltyOverride >= 0) {
            EXPECT_LE(s.base.missPenaltyOverride, 12);
        }

        // The scenario expands to a runnable plan with one cell per
        // scheme (the spec must be registered for expansion to
        // validate the benchmark name, as checkFuzzScenario does).
        registerDynamicBenchmark(s.spec);
        const std::vector<RunConfig> cells = s.plan().expand();
        EXPECT_EQ(cells.size(), s.schemes.size());
        for (const RunConfig &cell : cells) {
            const auto errors = validateRunConfig(cell);
            EXPECT_TRUE(errors.empty())
                << (errors.empty() ? "" : errors.front().format());
        }
        unregisterDynamicBenchmark(s.spec.name);
    }
}

TEST(FuzzScenarioGen, ShrinkLadderSimplifiesMonotonically)
{
    for (std::uint64_t seed : {7ull, 99ull, 12345ull}) {
        const FuzzScenario l0 = makeFuzzScenario(seed, 0);
        const FuzzScenario l1 = makeFuzzScenario(seed, 1);
        const FuzzScenario l2 = makeFuzzScenario(seed, 2);
        const FuzzScenario l3 = makeFuzzScenario(seed, 3);
        const FuzzScenario l4 =
            makeFuzzScenario(seed, kMaxShrinkLevel);

        // Level 1 drops to one real scheme next to perfect.
        EXPECT_EQ(l1.schemes.size(), 2u);
        EXPECT_LE(l1.schemes.size(), l0.schemes.size());
        // Level 2 clears layout and machine overrides.
        EXPECT_EQ(l2.layout, LayoutKind::Unordered);
        EXPECT_EQ(l2.base.specDepthOverride, -1);
        EXPECT_EQ(l2.base.btbEntriesOverride, -1);
        // Level 3 cuts the budget.
        EXPECT_LT(l3.maxRetired, std::max<std::uint64_t>(
                                     l2.maxRetired, 301));
        // Level 4 fixes the program shape but keeps the drawn seed.
        EXPECT_EQ(l4.spec.seed, l0.spec.seed);
        EXPECT_LE(l4.spec.numFunctions, l0.spec.numFunctions + 14);
        // Each level still derives deterministically.
        EXPECT_EQ(makeFuzzScenario(seed, 3).maxRetired,
                  l3.maxRetired);
    }
}

TEST(FuzzReproducerLine, IsReplayable)
{
    const std::string line = fuzzReproducer(0xabcdef0123456789ull, 0);
    EXPECT_NE(line.find("fetchsim_cli fuzz"), std::string::npos);
    EXPECT_NE(line.find("--fuzz-seed 0xabcdef0123456789"),
              std::string::npos);
    EXPECT_EQ(line.find("--shrink-level"), std::string::npos);

    const std::string shrunk = fuzzReproducer(0x10ull, 3);
    EXPECT_NE(shrunk.find("--shrink-level 3"), std::string::npos);
}

TEST(FuzzCampaign, SingleScenarioCheckRunsAllInvariantsClean)
{
    std::uint64_t cells = 0;
    const std::vector<FuzzFailure> failures =
        checkFuzzScenario(/*seed=*/3, /*shrink_level=*/0,
                          /*threads=*/2, &cells);
    for (const FuzzFailure &f : failures)
        ADD_FAILURE() << f.property << ": " << f.detail;
    // Baseline + thread-identity + replay-identity + resume-identity
    // + cache-identity all execute the grid.
    EXPECT_GT(cells, 0u);
}

TEST(FuzzCampaign, SmallCampaignIsCleanAndReproducible)
{
    FuzzOptions options;
    options.runs = 6;
    options.seed = 1;
    options.threads = 2;
    const FuzzReport a = runFuzz(options);
    EXPECT_TRUE(a.ok()) << (a.failures.empty()
                                ? ""
                                : a.failures.front().detail);
    EXPECT_EQ(a.scenarios, 6u);
    EXPECT_GT(a.cells, 0u);

    const FuzzReport b = runFuzz(options);
    EXPECT_EQ(a.cells, b.cells)
        << "campaign cell count varied for a fixed seed";
    EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzCampaign, ProgressLogMentionsSeedAndSummary)
{
    std::ostringstream log;
    FuzzOptions options;
    options.runs = 1;
    options.seed = 5;
    options.threads = 2;
    options.log = &log;
    const FuzzReport report = runFuzz(options);
    EXPECT_TRUE(report.ok());
    EXPECT_NE(log.str().find("fuzz:"), std::string::npos);
}

} // namespace
} // namespace fetchsim
