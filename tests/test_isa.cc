/**
 * @file
 * Unit tests for the ISA: op classes, factories, 32-bit encoding
 * round-trips, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/static_inst.h"
#include "workload/rng.h"

namespace fetchsim
{
namespace
{

TEST(OpClass, ControlClassification)
{
    EXPECT_FALSE(isControl(OpClass::IntAlu));
    EXPECT_FALSE(isControl(OpClass::FpAlu));
    EXPECT_FALSE(isControl(OpClass::Load));
    EXPECT_FALSE(isControl(OpClass::Store));
    EXPECT_FALSE(isControl(OpClass::Nop));
    EXPECT_TRUE(isControl(OpClass::CondBranch));
    EXPECT_TRUE(isControl(OpClass::Jump));
    EXPECT_TRUE(isControl(OpClass::Call));
    EXPECT_TRUE(isControl(OpClass::Return));
}

TEST(OpClass, UnconditionalClassification)
{
    EXPECT_FALSE(isUnconditionalControl(OpClass::CondBranch));
    EXPECT_TRUE(isUnconditionalControl(OpClass::Jump));
    EXPECT_TRUE(isUnconditionalControl(OpClass::Call));
    EXPECT_TRUE(isUnconditionalControl(OpClass::Return));
}

TEST(OpClass, UnitMapping)
{
    EXPECT_EQ(unitFor(OpClass::IntAlu), UnitKind::Fxu);
    EXPECT_EQ(unitFor(OpClass::Nop), UnitKind::Fxu);
    EXPECT_EQ(unitFor(OpClass::FpAlu), UnitKind::Fpu);
    EXPECT_EQ(unitFor(OpClass::Load), UnitKind::LoadUnit);
    EXPECT_EQ(unitFor(OpClass::Store), UnitKind::StorePort);
    EXPECT_EQ(unitFor(OpClass::CondBranch), UnitKind::BranchUnit);
    EXPECT_EQ(unitFor(OpClass::Return), UnitKind::BranchUnit);
}

TEST(OpClass, TableOneLatencies)
{
    // Table 1: FXU 1 cycle, FPU 2 cycles, branch 1 cycle.
    EXPECT_EQ(latencyOf(OpClass::IntAlu), 1);
    EXPECT_EQ(latencyOf(OpClass::FpAlu), 2);
    EXPECT_EQ(latencyOf(OpClass::CondBranch), 1);
    EXPECT_EQ(latencyOf(OpClass::Load), 2);
    EXPECT_EQ(latencyOf(OpClass::Store), 1);
}

TEST(StaticInst, WritesRegister)
{
    EXPECT_TRUE(makeIntAlu(5, 1, 2).writesRegister());
    EXPECT_TRUE(makeLoad(5, 1, 0).writesRegister());
    EXPECT_TRUE(makeCall().writesRegister()); // link register
    EXPECT_FALSE(makeStore(5, 1, 0).writesRegister());
    EXPECT_FALSE(makeCondBranch(1, 2).writesRegister());
    EXPECT_FALSE(makeJump().writesRegister());
    EXPECT_FALSE(makeNop().writesRegister());
    // Writing r0 (hard-wired zero) is not a register write.
    EXPECT_FALSE(makeIntAlu(0, 1, 2).writesRegister());
}

TEST(StaticInst, RegisterClassification)
{
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(32));
    EXPECT_TRUE(isFpReg(63));
}

TEST(Encoding, RoundTripRFormat)
{
    StaticInst inst = makeIntAlu(17, 3, 29, -37);
    StaticInst back = decode(encode(inst));
    EXPECT_EQ(back.op, inst.op);
    EXPECT_EQ(back.dest, inst.dest);
    EXPECT_EQ(back.src1, inst.src1);
    EXPECT_EQ(back.src2, inst.src2);
    EXPECT_EQ(back.imm, inst.imm);
}

TEST(Encoding, RoundTripBranch)
{
    StaticInst inst = makeCondBranch(9, 22);
    inst.imm = -1234;
    StaticInst back = decode(encode(inst));
    EXPECT_EQ(back.op, OpClass::CondBranch);
    EXPECT_EQ(back.src1, 9);
    EXPECT_EQ(back.src2, 22);
    EXPECT_EQ(back.imm, -1234);
}

TEST(Encoding, RoundTripJumpFamily)
{
    for (OpClass op : {OpClass::Jump, OpClass::Call}) {
        StaticInst inst;
        inst.op = op;
        inst.imm = 99999;
        StaticInst back = decode(encode(inst));
        EXPECT_EQ(back.op, op);
        EXPECT_EQ(back.imm, 99999);
    }
    StaticInst ret = makeReturn();
    StaticInst back = decode(encode(ret));
    EXPECT_EQ(back.op, OpClass::Return);
    EXPECT_EQ(back.src1, 31); // link register restored by decode
}

TEST(Encoding, ImmediateLimits)
{
    StaticInst inst = makeIntAlu(1, 2, 3, kImm10Max);
    EXPECT_TRUE(encodable(inst));
    inst.imm = kImm10Max + 1;
    EXPECT_FALSE(encodable(inst));
    inst.imm = kImm10Min;
    EXPECT_TRUE(encodable(inst));
    inst.imm = kImm10Min - 1;
    EXPECT_FALSE(encodable(inst));

    StaticInst br = makeCondBranch(1, 2);
    br.imm = kDisp16Max;
    EXPECT_TRUE(encodable(br));
    br.imm = kDisp16Max + 1;
    EXPECT_FALSE(encodable(br));
}

/** Property: random encodable instructions round-trip bit-exactly. */
TEST(Encoding, RandomRoundTripProperty)
{
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        StaticInst inst;
        inst.op = static_cast<OpClass>(rng.uniform(kNumOpClasses));
        switch (inst.op) {
          case OpClass::CondBranch:
            inst.src1 = static_cast<std::uint8_t>(rng.uniform(64));
            inst.src2 = static_cast<std::uint8_t>(rng.uniform(64));
            inst.imm = static_cast<std::int32_t>(
                rng.range(kDisp16Min, kDisp16Max));
            break;
          case OpClass::Jump:
          case OpClass::Call:
          case OpClass::Return:
            inst.imm = static_cast<std::int32_t>(
                rng.range(-100000, 100000));
            if (inst.op == OpClass::Call)
                inst.dest = 31;
            if (inst.op == OpClass::Return) {
                inst.src1 = 31;
                inst.imm = 0;
            }
            break;
          default:
            inst.dest = static_cast<std::uint8_t>(rng.uniform(64));
            inst.src1 = static_cast<std::uint8_t>(rng.uniform(64));
            inst.src2 = static_cast<std::uint8_t>(rng.uniform(64));
            inst.imm = static_cast<std::int32_t>(
                rng.range(kImm10Min, kImm10Max));
            break;
        }
        ASSERT_TRUE(encodable(inst));
        StaticInst back = decode(encode(inst));
        ASSERT_EQ(back.op, inst.op);
        ASSERT_EQ(back.dest, inst.dest);
        ASSERT_EQ(back.src1, inst.src1);
        ASSERT_EQ(back.src2, inst.src2);
        ASSERT_EQ(back.imm, inst.imm);
    }
}

TEST(Disasm, RegisterNames)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regName(31), "r31");
    EXPECT_EQ(regName(32), "f0");
    EXPECT_EQ(regName(63), "f31");
}

TEST(Disasm, RendersEveryClass)
{
    EXPECT_NE(disassemble(makeIntAlu(1, 2, 3, 4)).find("add"),
              std::string::npos);
    EXPECT_NE(disassemble(makeFpAlu(33, 34, 35)).find("fadd"),
              std::string::npos);
    EXPECT_NE(disassemble(makeLoad(1, 2, 8)).find("ld"),
              std::string::npos);
    EXPECT_NE(disassemble(makeStore(1, 2, 8)).find("st"),
              std::string::npos);
    EXPECT_NE(disassemble(makeReturn()).find("ret"),
              std::string::npos);
    EXPECT_NE(disassemble(makeNop()).find("nop"), std::string::npos);
}

TEST(Disasm, BranchTargetRendersAbsolute)
{
    StaticInst br = makeCondBranch(1, 2);
    br.imm = 4; // +4 instructions
    std::string text = disassemble(br, 0x1000);
    EXPECT_NE(text.find("0x1010"), std::string::npos);
}

} // anonymous namespace
} // namespace fetchsim
