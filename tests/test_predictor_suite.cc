/**
 * @file
 * Tests for the frontend extensions: gshare / two-level direction
 * predictors, the return-address stack, the oracle bound, and their
 * integration through PredictorSuite and the Processor.
 */

#include <gtest/gtest.h>

#include "branch/predictor_suite.h"
#include "core/processor.h"
#include "test_util.h"

namespace fetchsim
{
namespace
{

DynInst
makeDyn(std::uint64_t pc, OpClass op, bool taken,
        std::uint64_t target)
{
    DynInst di;
    di.pc = pc;
    di.si.op = op;
    di.taken = taken;
    di.actualTarget = target;
    if (op == OpClass::Return)
        di.si = makeReturn();
    if (op == OpClass::Call)
        di.si = makeCall();
    return di;
}

TEST(Gshare, LearnsABiasedBranch)
{
    GsharePredictor gshare(10, 0); // no history: pure bimodal
    for (int i = 0; i < 8; ++i)
        gshare.update(0x1000, true);
    EXPECT_TRUE(gshare.predict(0x1000));
    for (int i = 0; i < 8; ++i)
        gshare.update(0x1000, false);
    EXPECT_FALSE(gshare.predict(0x1000));
}

TEST(Gshare, HistoryShiftsIn)
{
    GsharePredictor gshare(12, 8);
    gshare.update(0x1000, true);
    gshare.update(0x1000, false);
    gshare.update(0x1000, true);
    EXPECT_EQ(gshare.history(), 0b101u);
}

TEST(Gshare, LearnsAHistoryCorrelatedPattern)
{
    // Alternating branch: with history, gshare becomes perfect after
    // warmup; without history a 2-bit counter is ~50%.
    GsharePredictor gshare(12, 4);
    // Warm up.
    bool outcome = false;
    for (int i = 0; i < 64; ++i) {
        outcome = !outcome;
        gshare.update(0x2000, outcome);
    }
    int correct = 0;
    for (int i = 0; i < 64; ++i) {
        outcome = !outcome;
        correct += gshare.predict(0x2000) == outcome ? 1 : 0;
        gshare.update(0x2000, outcome);
    }
    EXPECT_GT(correct, 60);
}

TEST(TwoLevel, LearnsShortLoopPeriod)
{
    // Loop with trip 5: pattern TTTTN repeating.  A 10-bit local
    // history covers two periods; the exit becomes predictable.
    TwoLevelPredictor pred(10, 10);
    auto run = [&](int rounds, bool measure) {
        int correct = 0, total = 0;
        for (int r = 0; r < rounds; ++r) {
            for (int i = 0; i < 5; ++i) {
                bool taken = i != 4;
                if (measure) {
                    correct += pred.predict(0x3000) == taken ? 1 : 0;
                    ++total;
                }
                pred.update(0x3000, taken);
            }
        }
        return total == 0 ? 0.0
                          : static_cast<double>(correct) / total;
    };
    run(300, false);                 // warmup
    EXPECT_GT(run(100, true), 0.95); // near-perfect incl. exits
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    EXPECT_TRUE(ras.empty());
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, OverflowWrapsLosingOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // evicts 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // underflow
}

TEST(PredictorSuite, RasPredictsReturnsAcrossCallSites)
{
    PredictorConfig config;
    config.useRas = true;
    PredictorSuite suite(1024, 4, config);

    // Two different call sites of the same function: the BTB's
    // last-target scheme would mispredict; the RAS must not.
    const std::uint64_t ret_pc = 0x9000;
    for (std::uint64_t site : {0x1000ull, 0x2000ull, 0x3000ull}) {
        // The call itself may take a decode-redirect bubble on a
        // cold BTB; that does not affect the RAS.
        InstPrediction call_pred = suite.predict(
            makeDyn(site, OpClass::Call, true, 0x9000 - 0x40));
        EXPECT_FALSE(call_pred.mispredict);
        InstPrediction ret_pred = suite.predict(
            makeDyn(ret_pc, OpClass::Return, true, site + 4));
        EXPECT_FALSE(ret_pred.mispredict) << std::hex << site;
        EXPECT_EQ(ret_pred.predTarget, site + 4);
    }
}

TEST(PredictorSuite, RasUnderflowMispredicts)
{
    PredictorConfig config;
    config.useRas = true;
    PredictorSuite suite(1024, 4, config);
    InstPrediction pred = suite.predict(
        makeDyn(0x9000, OpClass::Return, true, 0x1234));
    EXPECT_TRUE(pred.mispredict);
}

TEST(PredictorSuite, OracleDirectionNeverMispredictsWarmTargets)
{
    PredictorConfig config;
    config.kind = PredictorKind::OracleDirection;
    PredictorSuite suite(1024, 4, config);
    // Warm the BTB target for the branch.
    suite.btb().update(0x4000, true, 0x5000);
    for (bool taken : {true, false, true, true, false}) {
        InstPrediction pred = suite.predict(
            makeDyn(0x4000, OpClass::CondBranch, taken, 0x5000));
        EXPECT_FALSE(pred.mispredict);
        EXPECT_EQ(pred.predTaken, taken);
    }
}

TEST(PredictorSuite, OracleStillNeedsBtbForTargets)
{
    PredictorConfig config;
    config.kind = PredictorKind::OracleDirection;
    PredictorSuite suite(1024, 4, config);
    // Cold BTB: a taken branch cannot be redirected in time.
    InstPrediction pred = suite.predict(
        makeDyn(0x4000, OpClass::CondBranch, true, 0x5000));
    EXPECT_TRUE(pred.mispredict);
}

TEST(PredictorSuite, DirectionPredictorTrainsOnResolve)
{
    PredictorConfig config;
    config.kind = PredictorKind::Gshare;
    PredictorSuite suite(1024, 4, config);
    ASSERT_NE(suite.direction(), nullptr);
    suite.btb().update(0x4000, true, 0x5000); // target available
    DynInst br = makeDyn(0x4000, OpClass::CondBranch, true, 0x5000);
    for (int i = 0; i < 8; ++i)
        suite.onResolve(br);
    InstPrediction pred = suite.predict(br);
    EXPECT_TRUE(pred.predTaken);
    EXPECT_FALSE(pred.mispredict);
}

TEST(PredictorSuite, NamesAreStable)
{
    EXPECT_STREQ(predictorName(PredictorKind::BtbCounter),
                 "btb-2bit");
    EXPECT_STREQ(predictorName(PredictorKind::Gshare), "gshare");
    EXPECT_STREQ(predictorName(PredictorKind::TwoLevel),
                 "two-level");
    EXPECT_STREQ(predictorName(PredictorKind::OracleDirection),
                 "oracle-dir");
}

TEST(ProcessorExtensions, RasReducesReturnMispredicts)
{
    // A call-heavy micro workload: without RAS the shared return
    // site mispredicts on alternating call sites; with RAS it never
    // does.
    Workload wl = test::callWorkload(4);
    MachineConfig cfg = makeP14();
    Processor base(wl, kEvalInput, cfg,
                   makeFetchMechanism(SchemeKind::Perfect, cfg));
    base.run(5000);

    cfg.useRas = true;
    Processor with_ras(wl, kEvalInput, cfg,
                       makeFetchMechanism(SchemeKind::Perfect, cfg));
    with_ras.run(5000);

    EXPECT_LE(with_ras.counters().controlMispredicts,
              base.counters().controlMispredicts);
    EXPECT_GE(with_ras.counters().ipc(), base.counters().ipc());
}

TEST(ProcessorExtensions, OracleDirectionLiftsIpc)
{
    Workload wl = test::hammockWorkload(2, 2, 0.6); // hard branch
    MachineConfig cfg = makeP112();
    Processor base(wl, kEvalInput, cfg,
                   makeFetchMechanism(SchemeKind::Perfect, cfg));
    base.run(8000);

    cfg.predictorKind = PredictorKind::OracleDirection;
    Processor oracle(wl, kEvalInput, cfg,
                     makeFetchMechanism(SchemeKind::Perfect, cfg));
    oracle.run(8000);

    EXPECT_GT(oracle.counters().ipc(), base.counters().ipc());
    EXPECT_LT(oracle.counters().mispredictRate(),
              base.counters().mispredictRate());
}

TEST(CollapsingExtensions, BackwardCollapsingFollowsTinyLoops)
{
    // Walker-level check lives in test_walker; here the end-to-end
    // config: extended controller never loses to the paper one.
    Workload wl = test::loopWorkload(1, 6); // tiny loop body
    MachineConfig cfg = makeP112();
    Processor base(wl, kEvalInput, cfg,
                   makeCollapsingBuffer(
                       cfg, CollapsingBufferFetch::Impl::Crossbar));
    base.run(6000);
    Processor ext(
        wl, kEvalInput, cfg,
        std::make_unique<CollapsingBufferFetch>(
            cfg, CollapsingBufferFetch::Impl::Crossbar, true));
    ext.run(6000);
    EXPECT_LE(ext.counters().cycles, base.counters().cycles);
}

TEST(PredictorSuite, StaticBtfntPredictsBackwardTaken)
{
    PredictorConfig config;
    config.kind = PredictorKind::StaticBtfnt;
    PredictorSuite suite(1024, 4, config);
    // Backward branch (loop latch), target cached in the BTB.
    suite.btb().update(0x2000, true, 0x1000);
    InstPrediction taken = suite.predict(
        makeDyn(0x2000, OpClass::CondBranch, true, 0x1000));
    EXPECT_TRUE(taken.predTaken);
    EXPECT_FALSE(taken.mispredict);
    // The same branch not taken (loop exit) mispredicts.
    InstPrediction exit_pred = suite.predict(
        makeDyn(0x2000, OpClass::CondBranch, false, 0));
    EXPECT_TRUE(exit_pred.mispredict);
}

TEST(PredictorSuite, StaticBtfntPredictsForwardNotTaken)
{
    PredictorConfig config;
    config.kind = PredictorKind::StaticBtfnt;
    PredictorSuite suite(1024, 4, config);
    suite.btb().update(0x2000, true, 0x3000); // forward target
    InstPrediction not_taken = suite.predict(
        makeDyn(0x2000, OpClass::CondBranch, false, 0));
    EXPECT_FALSE(not_taken.predTaken);
    EXPECT_FALSE(not_taken.mispredict);
    InstPrediction taken = suite.predict(
        makeDyn(0x2000, OpClass::CondBranch, true, 0x3000));
    EXPECT_TRUE(taken.mispredict); // forward-taken defeats BTFNT
}

TEST(MultiBanked, AlignsAcrossSeveralBlocks)
{
    // End-to-end: the 8-bank unit beats banked sequential on
    // branchy code when both use dynamic prediction.
    const Workload wl = test::hammockWorkload(2, 3, 0.9);
    MachineConfig cfg = makeP112();
    Processor banked(wl, kEvalInput, cfg,
                     makeFetchMechanism(
                         SchemeKind::BankedSequential, cfg));
    Processor multi(wl, kEvalInput, cfg,
                    makeFetchMechanism(SchemeKind::MultiBanked, cfg));
    banked.run(8000);
    multi.run(8000);
    EXPECT_LE(multi.counters().cycles,
              banked.counters().cycles * 101 / 100);
}

TEST(MultiBanked, NeverBeatsPerfect)
{
    const Workload wl = test::loopWorkload(4, 9);
    MachineConfig cfg = makeP112();
    Processor multi(wl, kEvalInput, cfg,
                    makeFetchMechanism(SchemeKind::MultiBanked, cfg));
    Processor perfect(wl, kEvalInput, cfg,
                      makeFetchMechanism(SchemeKind::Perfect, cfg));
    multi.run(8000);
    perfect.run(8000);
    EXPECT_GE(multi.counters().cycles, perfect.counters().cycles);
}

TEST(CollapsingExtensionsDeath, BackwardNeedsCrossbar)
{
    MachineConfig cfg = makeP14();
    EXPECT_EXIT(CollapsingBufferFetch(
                    cfg, CollapsingBufferFetch::Impl::Shifter, true),
                ::testing::ExitedWithCode(1), "crossbar");
}

} // anonymous namespace
} // namespace fetchsim
