/**
 * @file
 * Tests for the reproduction-report generator (sim/repro_report.h):
 * the report must be byte-identical at any thread count (the docs
 * freshness contract) and contain every paper-artifact section.
 *
 * Runs at a tiny instruction budget -- the determinism and structure
 * of the document are budget-independent, only the numbers change.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "sim/repro_report.h"
#include "sim/session.h"

namespace fetchsim
{
namespace
{

constexpr std::uint64_t kTestBudget = 2000;

TEST(ReproReport, ByteStableAcrossThreadCounts)
{
    Session session; // shared workload cache; runs stay independent
    ReproReportOptions serial;
    serial.threads = 1;
    serial.dynInsts = kTestBudget;
    ReproReportOptions parallel;
    parallel.threads = 8;
    parallel.dynInsts = kTestBudget;

    std::string one = generateReproReport(session, serial);
    std::string eight = generateReproReport(session, parallel);
    EXPECT_EQ(one, eight);
}

TEST(ReproReport, ContainsEveryPaperArtifactSection)
{
    Session session;
    ReproReportOptions options;
    options.threads = 0; // hardware default
    options.dynInsts = kTestBudget;
    std::string report = generateReproReport(session, options);

    for (const char *heading : {
             "## Figure 3", "## Table 2", "## Figure 9", "## Figure 10",
             "## Figure 11", "## Table 3", "## Figure 12",
             "## Figure 13", "## Appendix",
         }) {
        EXPECT_NE(report.find(heading), std::string::npos)
            << "missing section: " << heading;
    }

    // The budget is stated (reports at different budgets are not
    // comparable).
    EXPECT_NE(report.find("Budget: **2000"), std::string::npos);
}

TEST(ReproReport, ProgressCallbackCoversTheGrid)
{
    Session session;
    std::size_t calls = 0;
    std::size_t last_done = 0;
    std::size_t total = 0;
    ReproReportOptions options;
    options.threads = 1;
    options.dynInsts = kTestBudget;
    options.progress = [&](std::size_t done, std::size_t n) {
        ++calls;
        last_done = done;
        total = n;
    };
    generateReproReport(session, options);
    EXPECT_GT(calls, 0u);
    EXPECT_GT(total, 0u);
    EXPECT_EQ(last_done, total);
}

} // namespace
} // namespace fetchsim
