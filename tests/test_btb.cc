/**
 * @file
 * Unit tests for the 2-bit counter and the interleaved BTB.
 */

#include <gtest/gtest.h>

#include "branch/btb.h"

namespace fetchsim
{
namespace
{

TEST(TwoBitCounter, SaturatesBothEnds)
{
    TwoBitCounter c(0);
    EXPECT_FALSE(c.predictTaken());
    c.update(false);
    EXPECT_EQ(c.state(), 0); // saturated low
    c.update(true);
    c.update(true);
    EXPECT_TRUE(c.predictTaken());
    c.update(true);
    c.update(true);
    EXPECT_EQ(c.state(), 3); // saturated high
}

TEST(TwoBitCounter, HysteresisSurvivesOneAnomaly)
{
    TwoBitCounter c(3);
    c.update(false); // 2: still predicts taken
    EXPECT_TRUE(c.predictTaken());
    c.update(false); // 1: now not-taken
    EXPECT_FALSE(c.predictTaken());
}

TEST(TwoBitCounter, InitialClamped)
{
    TwoBitCounter c(9);
    EXPECT_EQ(c.state(), 3);
}

TEST(Btb, MissOnColdLookup)
{
    Btb btb(1024, 4);
    EXPECT_FALSE(btb.lookup(0x1000).hit);
    EXPECT_EQ(btb.lookups(), 1u);
    EXPECT_EQ(btb.hits(), 0u);
}

TEST(Btb, AllocatesOnTakenOnly)
{
    Btb btb(1024, 4);
    btb.update(0x1000, false, 0); // not taken: no allocation
    EXPECT_FALSE(btb.lookup(0x1000).hit);
    btb.update(0x1000, true, 0x2000);
    BtbPrediction pred = btb.lookup(0x1000);
    EXPECT_TRUE(pred.hit);
    EXPECT_TRUE(pred.predictTaken); // allocated weakly taken
    EXPECT_EQ(pred.target, 0x2000u);
}

TEST(Btb, CounterTrainsTowardNotTaken)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    btb.update(0x1000, false, 0);
    // weakly-taken (2) -> 1: predict not taken, entry remains.
    BtbPrediction pred = btb.lookup(0x1000);
    EXPECT_TRUE(pred.hit);
    EXPECT_FALSE(pred.predictTaken);
}

TEST(Btb, TargetRefreshedOnTakenUpdate)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    btb.update(0x1000, true, 0x3000); // e.g. a return's new target
    EXPECT_EQ(btb.lookup(0x1000).target, 0x3000u);
}

TEST(Btb, DirectMappedReplacement)
{
    Btb btb(16, 4);
    const std::uint64_t a = 0x1000;
    const std::uint64_t b = a + 16 * 4; // same index, different tag
    btb.update(a, true, 0xA);
    btb.update(b, true, 0xB);
    EXPECT_FALSE(btb.lookup(a).hit); // evicted
    EXPECT_TRUE(btb.lookup(b).hit);
}

TEST(Btb, DistinctIndicesCoexist)
{
    Btb btb(1024, 4);
    for (std::uint64_t i = 0; i < 512; ++i)
        btb.update(0x4000 + i * 4, true, i);
    for (std::uint64_t i = 0; i < 512; ++i) {
        BtbPrediction pred = btb.lookup(0x4000 + i * 4);
        ASSERT_TRUE(pred.hit);
        ASSERT_EQ(pred.target, i);
    }
}

TEST(Btb, InterleaveBankMapping)
{
    Btb btb(1024, 4);
    // Consecutive instructions map to consecutive banks, wrapping at
    // the interleave factor (= instructions per cache block).
    EXPECT_EQ(btb.bankOf(0x1000), 0);
    EXPECT_EQ(btb.bankOf(0x1004), 1);
    EXPECT_EQ(btb.bankOf(0x1008), 2);
    EXPECT_EQ(btb.bankOf(0x100c), 3);
    EXPECT_EQ(btb.bankOf(0x1010), 0);
}

TEST(Btb, ProbeDoesNotCountStats)
{
    Btb btb(1024, 4);
    btb.probe(0x1000);
    EXPECT_EQ(btb.lookups(), 0u);
}

TEST(Btb, FlushClearsEntries)
{
    Btb btb(1024, 4);
    btb.update(0x1000, true, 0x2000);
    btb.flush();
    EXPECT_FALSE(btb.lookup(0x1000).hit);
}

TEST(BtbDeath, RejectsNonPowerOfTwoEntries)
{
    EXPECT_EXIT(Btb(1000, 4), ::testing::ExitedWithCode(1),
                "power of two");
}

} // anonymous namespace
} // namespace fetchsim
