/**
 * @file
 * Tests for the fetch-scheme registry: the single authority mapping
 * scheme ids to CLI keys, display names, metadata and factories.
 * Round-trips every registered scheme through parse/print/construct,
 * and pins sweep invariance across thread counts and replay policies.
 */

#include <gtest/gtest.h>

#include <string>

#include "fetch/scheme_registry.h"
#include "sim/session.h"
#include "sim/sweep.h"

namespace fetchsim
{
namespace
{

TEST(SchemeRegistry, CoversEveryKindInOrder)
{
    const auto &registry = FetchSchemeRegistry::instance();
    ASSERT_EQ(static_cast<int>(registry.schemes().size()),
              kNumSchemes);
    for (int i = 0; i < kNumSchemes; ++i) {
        const SchemeKind kind = static_cast<SchemeKind>(i);
        EXPECT_EQ(registry.info(kind).kind, kind);
        EXPECT_EQ(registry.schemes()[static_cast<std::size_t>(i)].kind,
                  kind);
    }
}

TEST(SchemeRegistry, FindRoundTripsKeysAndDisplayNames)
{
    const auto &registry = FetchSchemeRegistry::instance();
    for (const SchemeInfo &scheme : registry.schemes()) {
        const SchemeInfo *by_key = registry.find(scheme.key);
        ASSERT_NE(by_key, nullptr) << scheme.key;
        EXPECT_EQ(by_key->kind, scheme.kind);
        const SchemeInfo *by_display = registry.find(scheme.display);
        ASSERT_NE(by_display, nullptr) << scheme.display;
        EXPECT_EQ(by_display->kind, scheme.kind);
    }
    EXPECT_EQ(registry.find("not-a-scheme"), nullptr);
    EXPECT_EQ(registry.find(""), nullptr);
}

TEST(SchemeRegistry, DisplayNameMatchesSchemeName)
{
    // schemeName() is the long-standing print API (reports, bench
    // ids, checkpoint journals); it must stay byte-identical to the
    // registry's display names.
    const auto &registry = FetchSchemeRegistry::instance();
    for (const SchemeInfo &scheme : registry.schemes())
        EXPECT_STREQ(schemeName(scheme.kind), scheme.display);
}

TEST(SchemeRegistry, PaperSchemesAreTheFiveSchemeGrid)
{
    const std::vector<SchemeKind> expected = {
        SchemeKind::Sequential, SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};
    EXPECT_EQ(FetchSchemeRegistry::instance().paperSchemes(),
              expected);
}

TEST(SchemeRegistry, OnlyTheCollapsingBufferTakesAnImplAxis)
{
    const auto &registry = FetchSchemeRegistry::instance();
    for (const SchemeInfo &scheme : registry.schemes())
        EXPECT_EQ(scheme.cbImplApplies,
                  scheme.kind == SchemeKind::CollapsingBuffer);
}

TEST(SchemeRegistry, KeyListJoinsEveryKey)
{
    const std::string joined =
        FetchSchemeRegistry::instance().keyList();
    EXPECT_NE(joined.find("sequential"), std::string::npos);
    EXPECT_NE(joined.find("collapsing"), std::string::npos);
    EXPECT_NE(joined.find("trace-cache"), std::string::npos);
    int separators = 0;
    for (char c : joined)
        if (c == '|')
            ++separators;
    EXPECT_EQ(separators, kNumSchemes - 1);
}

TEST(SchemeRegistry, FactoryConstructsMatchingMechanism)
{
    const auto &registry = FetchSchemeRegistry::instance();
    const MachineConfig cfg = makeP14();
    for (const SchemeInfo &scheme : registry.schemes()) {
        auto mechanism = registry.make(scheme.kind, cfg);
        ASSERT_NE(mechanism, nullptr) << scheme.key;
        EXPECT_EQ(mechanism->kind(), scheme.kind) << scheme.key;
    }
}

RunConfig
tinyConfig(SchemeKind scheme)
{
    RunConfig config;
    config.benchmark = "compress";
    config.machine = MachineModel::P14;
    config.scheme = scheme;
    config.maxRetired = 4000;
    return config;
}

std::vector<RunConfig>
everySchemeGrid()
{
    std::vector<RunConfig> grid;
    for (const SchemeInfo &scheme :
         FetchSchemeRegistry::instance().schemes())
        grid.push_back(tinyConfig(scheme.kind));
    return grid;
}

void
expectSameRuns(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].config.scheme, b.runs[i].config.scheme);
        EXPECT_EQ(a.runs[i].counters.cycles,
                  b.runs[i].counters.cycles)
            << schemeName(a.runs[i].config.scheme);
        EXPECT_EQ(a.runs[i].counters.retired,
                  b.runs[i].counters.retired);
        EXPECT_EQ(a.runs[i].counters.delivered,
                  b.runs[i].counters.delivered);
        EXPECT_EQ(a.runs[i].counters.mispredicts,
                  b.runs[i].counters.mispredicts);
    }
}

TEST(SchemeRegistry, SweepIsThreadCountInvariant)
{
    // Every registered scheme produces bit-identical counters at 1
    // and 8 worker threads: mechanism state is per-run, so worker
    // scheduling must not leak into results.
    const std::vector<RunConfig> grid = everySchemeGrid();
    Session session;
    SweepOptions one;
    one.threads = 1;
    const SweepResult serial =
        SweepEngine(session, one).run(grid);
    SweepOptions eight;
    eight.threads = 8;
    const SweepResult parallel =
        SweepEngine(session, eight).run(grid);
    expectSameRuns(serial, parallel);
}

TEST(SchemeRegistry, SweepIsReplayPolicyInvariant)
{
    // Replayed streams are the recorded live streams: counters must
    // not depend on the stream source for any scheme.
    const std::vector<RunConfig> grid = everySchemeGrid();
    Session session;
    SweepOptions live;
    live.threads = 1;
    const SweepResult off = SweepEngine(session, live).run(grid);
    SweepOptions replayed;
    replayed.threads = 1;
    replayed.replay.policy = ReplayPolicy::InMemory;
    const SweepResult mem =
        SweepEngine(session, replayed).run(grid);
    expectSameRuns(off, mem);
}

} // anonymous namespace
} // namespace fetchsim
