/**
 * @file
 * Integration tests for the out-of-order processor core: renaming,
 * retirement order, register-file coherence, speculation bounds,
 * determinism, and timing sanity.
 */

#include <gtest/gtest.h>

#include "core/processor.h"
#include "test_util.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

std::unique_ptr<Processor>
makeProc(const Workload &wl, const MachineConfig &cfg,
         SchemeKind scheme = SchemeKind::Perfect)
{
    return std::make_unique<Processor>(
        wl, kEvalInput, cfg, makeFetchMechanism(scheme, cfg));
}

TEST(Processor, RetiresRequestedInstructions)
{
    Workload wl = test::straightLineWorkload(10);
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    proc->run(500);
    EXPECT_GE(proc->counters().retired, 500u);
    EXPECT_GT(proc->counters().cycles, 0u);
}

TEST(Processor, IpcNeverExceedsIssueRate)
{
    for (MachineModel m :
         {MachineModel::P14, MachineModel::P18, MachineModel::P112}) {
        Workload wl = test::straightLineWorkload(32);
        MachineConfig cfg = makeMachine(m);
        auto proc = makeProc(wl, cfg);
        proc->run(2000);
        EXPECT_LE(proc->counters().ipc(),
                  static_cast<double>(cfg.issueRate));
    }
}

TEST(Processor, StraightLineIpcIsHigh)
{
    // Pure straight-line code with a perfect fetch unit should come
    // close to the dependency-limited rate; far above 1.
    Workload wl = test::straightLineWorkload(64);
    MachineConfig cfg = makeP112();
    auto proc = makeProc(wl, cfg);
    proc->run(5000);
    EXPECT_GT(proc->counters().ipc(), 2.0);
}

TEST(Processor, DeterministicAcrossRuns)
{
    Workload wl = test::loopWorkload(6, 9);
    MachineConfig cfg = makeP18();
    auto a = makeProc(wl, cfg, SchemeKind::BankedSequential);
    auto b = makeProc(wl, cfg, SchemeKind::BankedSequential);
    a->run(3000);
    b->run(3000);
    EXPECT_EQ(a->counters().cycles, b->counters().cycles);
    EXPECT_EQ(a->counters().retired, b->counters().retired);
    EXPECT_EQ(a->counters().mispredicts, b->counters().mispredicts);
    EXPECT_EQ(a->counters().icacheMisses,
              b->counters().icacheMisses);
}

TEST(Processor, MessyAndFutureFilesCohereForRetiredProducers)
{
    // Invariant: whenever a register has no in-flight producer, its
    // speculative (Messy) and precise (Future) values agree -- the
    // last completed write has retired.  Checked repeatedly mid-run.
    Workload wl = test::straightLineWorkload(16);
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    for (int round = 0; round < 200; ++round) {
        proc->step();
        for (int r = 1; r < kNumIntRegs; ++r) {
            const auto reg = static_cast<std::uint8_t>(r);
            if (proc->registers().producerOf(reg) !=
                RegisterState::kReady)
                continue;
            ASSERT_EQ(proc->registers().readMessy(reg),
                      proc->registers().readFuture(reg))
                << "register " << r << " round " << round;
        }
    }
}

TEST(Processor, SpeculationDepthRespectedEveryCycle)
{
    Workload wl = test::loopWorkload(2, 4); // branch-dense
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    for (int i = 0; i < 3000; ++i) {
        proc->step();
        ASSERT_LE(proc->unresolvedBranches(), cfg.specDepth);
        ASSERT_GE(proc->unresolvedBranches(), 0);
    }
}

TEST(Processor, WindowAndRobBoundsHold)
{
    Workload wl = test::loopWorkload(8, 12);
    MachineConfig cfg = makeP18();
    auto proc = makeProc(wl, cfg);
    for (int i = 0; i < 3000; ++i) {
        proc->step();
        ASSERT_LE(proc->windowOccupancy(), cfg.windowSize);
        ASSERT_LE(proc->robOccupancy(),
                  static_cast<std::size_t>(cfg.robSize));
    }
}

TEST(Processor, DeliveredCoversRetired)
{
    Workload wl = test::hammockWorkload(3, 2, 0.7);
    MachineConfig cfg = makeP18();
    auto proc = makeProc(wl, cfg, SchemeKind::CollapsingBuffer);
    proc->run(4000);
    // Trace-driven: nothing is squashed, so delivered instructions
    // are exactly retired + still in flight.
    EXPECT_EQ(proc->counters().delivered,
              proc->counters().retired + proc->robOccupancy());
}

TEST(Processor, RegisterValuesFlowThroughDependencies)
{
    // r1 = r0 + r0 + 5;  r2 = r1 + r1 + 1;  check Future file.
    Workload wl(test::tinySpec("dataflow"));
    Program &prog = wl.program;
    FuncId fn = prog.addFunction("main");
    prog.setMainFunction(fn);
    BlockId b = prog.addBlock(fn);
    prog.function(fn).entry = b;
    prog.block(b).body.push_back(makeIntAlu(1, 0, 0, 5));
    prog.block(b).body.push_back(makeIntAlu(2, 1, 1, 1));
    prog.block(b).body.push_back(makeReturn());
    prog.block(b).term = TermKind::Return;
    assignAddresses(prog);
    prog.validate();

    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    proc->run(3);
    for (int i = 0; i < 50 && proc->robOccupancy() > 0; ++i)
        proc->step();
    EXPECT_EQ(proc->registers().readFuture(1), 5u);
    EXPECT_EQ(proc->registers().readFuture(2), 11u);
}

TEST(Processor, MispredictsAreCountedOnLoopExits)
{
    // A counted loop mispredicts at least on each exit (2-bit
    // counters stay taken-saturated inside the loop).
    Workload wl = test::loopWorkload(4, 10);
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    proc->run(5000);
    EXPECT_GT(proc->counters().mispredicts, 10u);
    EXPECT_LT(proc->counters().mispredictRate(), 0.5);
}

TEST(Processor, AlwaysTakenHammockPredictsWell)
{
    Workload wl = test::hammockWorkload(2, 2, 1.0);
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    proc->run(5000);
    // After warmup the 2-bit counter locks onto always-taken.
    EXPECT_LT(proc->counters().mispredictRate(), 0.05);
}

TEST(Processor, IcacheStatsPropagate)
{
    Workload wl = test::straightLineWorkload(200);
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    proc->run(2000);
    EXPECT_GT(proc->counters().icacheAccesses, 0u);
    EXPECT_GT(proc->counters().icacheMisses, 0u); // cold misses
    EXPECT_LT(proc->counters().icacheMissRatio(), 0.2);
}

TEST(Processor, TakenBranchCensusMatchesWorkloadShape)
{
    Workload wl = test::loopWorkload(5, 8);
    MachineConfig cfg = makeP14();
    auto proc = makeProc(wl, cfg);
    proc->run(4000);
    const RunCounters &c = proc->counters();
    EXPECT_GT(c.condBranches, 0u);
    EXPECT_GT(c.takenBranches, 0u);
    // Loop latches dominate: most conditional branches are taken.
    EXPECT_GT(static_cast<double>(c.takenBranches) /
                  static_cast<double>(c.condBranches),
              0.5);
}

TEST(Processor, EverySchemeCompletesOnEveryMicroWorkload)
{
    const SchemeKind schemes[] = {
        SchemeKind::Sequential, SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential, SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect};
    Workload workloads[] = {
        test::straightLineWorkload(9), test::loopWorkload(3, 7),
        test::hammockWorkload(2, 3, 0.8), test::callWorkload(6)};
    for (const Workload &wl : workloads) {
        for (SchemeKind scheme : schemes) {
            MachineConfig cfg = makeP112();
            auto proc = makeProc(wl, cfg, scheme);
            proc->run(1500);
            EXPECT_GE(proc->counters().retired, 1500u);
        }
    }
}

TEST(Processor, ShifterCollapsingBufferIsSlower)
{
    // Same workload, same machine: the 3-cycle-penalty shifter
    // implementation can never beat the 2-cycle crossbar.
    Workload wl = test::loopWorkload(3, 6); // mispredict-rich
    MachineConfig cfg = makeP112();
    Processor crossbar(wl, kEvalInput, cfg,
                       makeCollapsingBuffer(
                           cfg, CollapsingBufferFetch::Impl::Crossbar));
    Processor shifter(wl, kEvalInput, cfg,
                      makeCollapsingBuffer(
                          cfg, CollapsingBufferFetch::Impl::Shifter));
    crossbar.run(5000);
    shifter.run(5000);
    EXPECT_LE(crossbar.counters().cycles, shifter.counters().cycles);
}

TEST(Processor, FetchPenaltyFieldsExposed)
{
    MachineConfig cfg = makeP14();
    EXPECT_EQ(makeFetchMechanism(SchemeKind::Sequential, cfg)
                  ->mispredictPenalty(),
              2);
    EXPECT_EQ(makeCollapsingBuffer(
                  cfg, CollapsingBufferFetch::Impl::Shifter)
                  ->mispredictPenalty(),
              3);
}

} // anonymous namespace
} // namespace fetchsim
