/**
 * @file
 * Fault-tolerance tests: the sweep isolation boundary (keep-going vs
 * fail-fast), the retry policy against transient faults, the cycle
 * watchdog, the fault-injection harness itself, and the structured
 * error plumbing (validation collects all violations; sink write
 * failures surface as Io errors).
 */

#include <gtest/gtest.h>

#include <ostream>
#include <string>
#include <vector>

#include "core/error.h"
#include "perf/clock.h"
#include "sim/fault_injection.h"
#include "sim/plan.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/trace_sink.h"

namespace fetchsim
{
namespace
{

Session &
testSession()
{
    static Session session;
    return session;
}

/** A 6-cell plan small enough for unit-test budgets. */
ExperimentPlan
smallPlan()
{
    ExperimentPlan plan;
    plan.benchmarks({"gcc", "compress", "eqntott"})
        .machine(MachineModel::P14)
        .schemes({SchemeKind::Sequential, SchemeKind::Perfect})
        .maxRetired(2000);
    return plan;
}

// ------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParsesCellSegments)
{
    auto plan =
        FaultPlan::parse("cell=5,times=2,kind=io;watchdog=100");
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().failCell, 5);
    EXPECT_EQ(plan.value().failTimes, 2);
    EXPECT_EQ(plan.value().failKind, ErrorKind::Io);
    EXPECT_EQ(plan.value().watchdogCycles, 100u);
    EXPECT_TRUE(plan.value().active());
    EXPECT_TRUE(plan.value().shouldFail(5, 1));
    EXPECT_TRUE(plan.value().shouldFail(5, 2));
    EXPECT_FALSE(plan.value().shouldFail(5, 3));
    EXPECT_FALSE(plan.value().shouldFail(4, 1));
}

TEST(FaultPlan, EmptySpecIsInactive)
{
    auto plan = FaultPlan::parse("");
    ASSERT_TRUE(plan.ok());
    EXPECT_FALSE(plan.value().active());
}

TEST(FaultPlan, MalformedSpecsAreConfigErrors)
{
    for (const char *spec :
         {"cell", "cell=abc", "kind=nuclear", "frobnicate=1"}) {
        auto plan = FaultPlan::parse(spec);
        ASSERT_FALSE(plan.ok()) << spec;
        EXPECT_EQ(plan.error().kind, ErrorKind::Config) << spec;
    }
}

// ------------------------------------------- keep-going isolation

TEST(FaultTolerance, KeepGoingIsolatesTheFailedCell)
{
    SweepOptions options;
    options.threads = 2;
    options.failure.mode = FailureMode::KeepGoing;
    options.faults.failCell = 3;
    options.faults.failKind = ErrorKind::Workload;

    SweepEngine engine(testSession(), options);
    SweepResult sweep = engine.run(smallPlan());

    ASSERT_EQ(sweep.runs.size(), 6u);
    ASSERT_EQ(sweep.statuses.size(), 6u);
    EXPECT_EQ(sweep.countWith(RunOutcome::Ok), 5u);
    EXPECT_EQ(sweep.countWith(RunOutcome::Failed), 1u);
    EXPECT_EQ(sweep.countWith(RunOutcome::Skipped), 0u);
    EXPECT_FALSE(sweep.allOk());
    EXPECT_FALSE(sweep.stopped);

    // The failed cell carries the injected error, verbatim.
    ASSERT_EQ(sweep.failedCells(), std::vector<std::size_t>{3});
    const RunStatus &status = sweep.statuses[3];
    EXPECT_EQ(status.outcome, RunOutcome::Failed);
    EXPECT_EQ(status.error.kind, ErrorKind::Workload);
    EXPECT_NE(status.error.message.find("injected fault at cell 3"),
              std::string::npos);
    EXPECT_EQ(status.attempts, 1);

    // Every other cell completed with real counters.
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_TRUE(sweep.cellOk(i)) << i;
        EXPECT_GT(sweep.runs[i].counters.retired, 0u) << i;
    }

    // Aggregation views never see the failed cell: where() returns
    // only the 5 Ok runs, and tryFind() cannot match the failed one.
    EXPECT_EQ(sweep.where([](const RunConfig &) { return true; })
                  .size(),
              5u);
    const RunConfig &failed_config = sweep.runs[3].config;
    EXPECT_EQ(sweep.tryFind([&](const RunConfig &config) {
        return config.benchmark == failed_config.benchmark &&
               config.scheme == failed_config.scheme;
    }),
              nullptr);
}

TEST(FaultTolerance, KeepGoingMatchesCleanRunOnSurvivingCells)
{
    SweepOptions clean_options;
    clean_options.threads = 2;
    SweepEngine clean_engine(testSession(), clean_options);
    SweepResult clean = clean_engine.run(smallPlan());
    ASSERT_TRUE(clean.allOk());

    SweepOptions fault_options = clean_options;
    fault_options.failure.mode = FailureMode::KeepGoing;
    fault_options.faults.failCell = 1;
    SweepEngine fault_engine(testSession(), fault_options);
    SweepResult faulted = fault_engine.run(smallPlan());

    // Isolation means bit-identical counters for every cell the
    // fault did not touch.
    for (std::size_t i = 0; i < clean.runs.size(); ++i) {
        if (i == 1)
            continue;
        EXPECT_EQ(clean.runs[i].counters.retired,
                  faulted.runs[i].counters.retired)
            << i;
        EXPECT_EQ(clean.runs[i].counters.cycles,
                  faulted.runs[i].counters.cycles)
            << i;
    }
}

// --------------------------------------------------- fail-fast

TEST(FaultTolerance, FailFastRethrowsTheOriginalError)
{
    SweepOptions options;
    options.threads = 1;
    options.faults.failCell = 2;
    options.faults.failKind = ErrorKind::Internal;

    SweepEngine engine(testSession(), options);
    try {
        engine.run(smallPlan());
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
        EXPECT_NE(std::string(e.what()).find("cell 2"),
                  std::string::npos);
    }
}

TEST(FaultTolerance, FindThrowsConfigOnNoMatch)
{
    SweepResult sweep;
    EXPECT_THROW(
        sweep.find([](const RunConfig &) { return true; }),
        SimException);
    EXPECT_EQ(sweep.tryFind([](const RunConfig &) { return true; }),
              nullptr);
}

// ------------------------------------------------------- retries

TEST(FaultTolerance, RetryRecoversTransientFault)
{
    SweepOptions options;
    options.threads = 1;
    options.failure.mode = FailureMode::KeepGoing;
    options.failure.maxRetries = 2;
    options.failure.backoffMs = 0;
    options.faults.failCell = 0;
    options.faults.failTimes = 2; // attempts 1 and 2 fail, 3 succeeds
    options.faults.failKind = ErrorKind::Io;

    SweepEngine engine(testSession(), options);
    SweepResult sweep = engine.run(smallPlan());

    EXPECT_TRUE(sweep.allOk());
    EXPECT_EQ(sweep.statuses[0].outcome, RunOutcome::Ok);
    EXPECT_EQ(sweep.statuses[0].attempts, 3);
    EXPECT_GT(sweep.runs[0].counters.retired, 0u);
}

TEST(FaultTolerance, RetryBackoffUsesInjectedClockWithoutSleeping)
{
    ManualClock clock;
    SweepOptions options;
    options.threads = 1;
    options.failure.mode = FailureMode::KeepGoing;
    options.failure.maxRetries = 2;
    options.failure.backoffMs = 100;
    options.clock = &clock;
    options.faults.failCell = 0;
    options.faults.failTimes = 2; // attempts 1 and 2 fail, 3 succeeds
    options.faults.failKind = ErrorKind::Io;

    SweepEngine engine(testSession(), options);
    SweepResult sweep = engine.run(smallPlan());

    EXPECT_TRUE(sweep.allOk());
    EXPECT_EQ(sweep.statuses[0].attempts, 3);
    // Exponential backoff against the virtual clock: 100ms before
    // attempt 2, 200ms before attempt 3 -- and no real waiting.
    const std::vector<std::uint64_t> expected = {100000000ull,
                                                 200000000ull};
    EXPECT_EQ(clock.sleeps(), expected);
}

TEST(FaultTolerance, RetriesExhaustOnPermanentFault)
{
    SweepOptions options;
    options.threads = 1;
    options.failure.mode = FailureMode::KeepGoing;
    options.failure.maxRetries = 1;
    options.failure.backoffMs = 0;
    options.faults.failCell = 0;
    options.faults.failTimes = 5; // outlasts the retry budget

    SweepEngine engine(testSession(), options);
    SweepResult sweep = engine.run(smallPlan());

    EXPECT_EQ(sweep.statuses[0].outcome, RunOutcome::Failed);
    EXPECT_EQ(sweep.statuses[0].attempts, 2);
    EXPECT_EQ(sweep.countWith(RunOutcome::Ok), 5u);
}

// ------------------------------------------------------ watchdog

TEST(FaultTolerance, WatchdogTripsAsWorkloadError)
{
    // 10 cycles cannot retire a 2000-instruction budget on any
    // machine, so every cell trips the watchdog.
    SweepOptions options;
    options.threads = 1;
    options.failure.mode = FailureMode::KeepGoing;
    options.faults.watchdogCycles = 10;

    SweepEngine engine(testSession(), options);
    SweepResult sweep = engine.run(smallPlan());

    EXPECT_EQ(sweep.countWith(RunOutcome::Failed), 6u);
    for (const RunStatus &status : sweep.statuses) {
        EXPECT_EQ(status.error.kind, ErrorKind::Workload);
        EXPECT_NE(status.error.message.find("watchdog"),
                  std::string::npos);
    }
}

TEST(FaultTolerance, WatchdogAtGenerousLimitNeverTrips)
{
    // The same grid under a limit no 2000-instruction run reaches:
    // the watchdog must not perturb results (it is excluded from
    // checkpoint keys on exactly this argument).
    SweepOptions plain_options;
    plain_options.threads = 1;
    SweepEngine plain(testSession(), plain_options);
    SweepResult expected = plain.run(smallPlan());

    SweepOptions armed_options;
    armed_options.threads = 1;
    armed_options.faults.watchdogCycles = 100000000;
    SweepEngine armed(testSession(), armed_options);
    SweepResult actual = armed.run(smallPlan());

    ASSERT_TRUE(actual.allOk());
    for (std::size_t i = 0; i < expected.runs.size(); ++i) {
        EXPECT_EQ(expected.runs[i].counters.cycles,
                  actual.runs[i].counters.cycles)
            << i;
    }
}

// -------------------------------------------------- stop requests

TEST(FaultTolerance, StopRequestDrainsAndMarksSkipped)
{
    clearSweepStop();
    SweepOptions options;
    options.threads = 1;
    std::size_t seen = 0;
    options.progress = [&](std::size_t, std::size_t,
                           const RunResult &) {
        if (++seen == 2)
            requestSweepStop();
    };

    SweepEngine engine(testSession(), options);
    SweepResult sweep = engine.run(smallPlan());
    clearSweepStop();

    EXPECT_TRUE(sweep.stopped);
    EXPECT_EQ(sweep.countWith(RunOutcome::Ok), 2u);
    EXPECT_EQ(sweep.countWith(RunOutcome::Skipped), 4u);
    EXPECT_FALSE(sweep.allOk());
    // Skipped cells still name their config for failure tables.
    for (std::size_t i = 0; i < sweep.runs.size(); ++i)
        EXPECT_FALSE(sweep.runs[i].config.benchmark.empty()) << i;
}

// ----------------------------------- structured validation errors

TEST(Validation, SessionCollectsAllViolations)
{
    RunConfig config;
    config.benchmark = "doom"; // unknown
    config.input = 42;         // out of range
    config.btbEntriesOverride = 0;

    const std::vector<SimError> errors = validateRunConfig(config);
    ASSERT_EQ(errors.size(), 3u);
    for (const SimError &error : errors)
        EXPECT_EQ(error.kind, ErrorKind::Config);

    Session session;
    try {
        session.run(config);
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        // The thrown message carries every violation, not just the
        // first.
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown benchmark"), std::string::npos);
        EXPECT_NE(what.find("input id"), std::string::npos);
        EXPECT_NE(what.find("btbEntriesOverride"), std::string::npos);
    }
}

// -------------------------------------------- sink write failures

TEST(FaultInjection, FailAfterBufTurnsWritesIntoIoErrors)
{
    FailAfterBuf buf(64);
    std::ostream os(&buf);
    TraceSink sink(os);

    // Each event is well over 16 bytes, so the 64-byte budget fails
    // within a few events and the stream enters its failed state.
    bool threw = false;
    for (int i = 0; i < 100 && !threw; ++i) {
        try {
            sink.begin("fetch", static_cast<std::uint64_t>(i));
            sink.field("pc", static_cast<std::uint64_t>(4096 + i));
            sink.field("delivered", 4);
            sink.end();
        } catch (const SimException &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Io);
            threw = true;
        }
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(buf.accepted(), 64u);
}

} // anonymous namespace
} // namespace fetchsim
