/**
 * @file
 * Host-telemetry tests: the injectable clock, the scoped profiler
 * (disabled-mode no-op, nested scopes, sampling, deterministic
 * thread merge), the Chrome trace-event exporter's schema, the bench
 * harness statistics and baseline gating, and the round-trippable
 * double formatting shared by the JSON/CSV emitters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/clock.h"
#include "perf/host_stats.h"
#include "perf/profiler.h"
#include "perf/trace_export.h"
#include "sim/bench.h"
#include "sim/session.h"
#include "sim/sweep.h"
#include "stats/csv.h"
#include "stats/json.h"

namespace fetchsim
{
namespace
{

/**
 * Structural JSON well-formedness: braces and brackets balance
 * outside string literals, and no string literal is left open.
 * Enough to catch emitter bugs without a full parser.
 */
bool
balancedJson(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    bool escape = false;
    for (char ch : text) {
        if (escape) {
            escape = false;
            continue;
        }
        if (in_string) {
            if (ch == '\\')
                escape = true;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"') {
            in_string = true;
        } else if (ch == '{' || ch == '[') {
            ++depth;
        } else if (ch == '}' || ch == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

/** Profiler state is process-wide; every test leaves it clean. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::setEnabled(false);
        Profiler::instance().setClock(nullptr);
        Profiler::instance().drain();
    }

    void
    TearDown() override
    {
        Profiler::setEnabled(false);
        Profiler::instance().setClock(nullptr);
        Profiler::instance().drain();
    }
};

// --------------------------------------------------------- Clock

TEST(ManualClockTest, AdvanceMovesTimeWithoutRecordingSleeps)
{
    ManualClock clock(1000);
    EXPECT_EQ(clock.nowNs(), 1000u);
    clock.advance(500);
    EXPECT_EQ(clock.nowNs(), 1500u);
    EXPECT_EQ(clock.sleepCount(), 0u);
}

TEST(ManualClockTest, SleepAdvancesTimeAndRecords)
{
    ManualClock clock;
    clock.sleepNs(100);
    clock.sleepNs(200);
    EXPECT_EQ(clock.nowNs(), 300u);
    EXPECT_EQ(clock.sleepCount(), 2u);
    const std::vector<std::uint64_t> expected = {100, 200};
    EXPECT_EQ(clock.sleeps(), expected);
}

TEST(ManualClockTest, SystemClockIsMonotonic)
{
    Clock &clock = systemClock();
    const std::uint64_t first = clock.nowNs();
    const std::uint64_t second = clock.nowNs();
    EXPECT_GE(second, first);
}

// ------------------------------------------------------ Profiler

TEST_F(ProfilerTest, DisabledScopesTouchNoBuffers)
{
    const std::size_t buffers_before =
        Profiler::instance().threadBuffers();

    // A fresh thread would have to create a new buffer to record
    // anything; with the profiler disabled it must not.
    std::thread worker([] {
        PERF_SCOPE("disabled.outer");
        {
            PERF_SCOPE("disabled.inner");
        }
        std::uint64_t counter = 0;
        PerfSampledScope sampled("disabled.sampled", 2, counter);
    });
    worker.join();

    EXPECT_EQ(Profiler::instance().threadBuffers(), buffers_before);
    EXPECT_TRUE(Profiler::instance().drain().empty());
}

TEST_F(ProfilerTest, NestedScopesRecordExactTimesUnderManualClock)
{
    ManualClock clock(1000);
    Profiler::instance().setClock(&clock);
    Profiler::setEnabled(true);
    {
        PerfScope outer("outer");
        clock.advance(100);
        {
            PerfScope inner("inner");
            clock.advance(50);
        }
        clock.advance(25);
    }
    Profiler::setEnabled(false);

    const std::vector<PerfEvent> events =
        Profiler::instance().drain();
    ASSERT_EQ(events.size(), 2u);
    // drain() orders by startNs: outer (1000) before inner (1100).
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].startNs, 1000u);
    EXPECT_EQ(events[0].durNs, 175u);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].startNs, 1100u);
    EXPECT_EQ(events[1].durNs, 50u);
}

TEST_F(ProfilerTest, ScopeThatStartedDisabledRecordsNothing)
{
    ManualClock clock;
    Profiler::instance().setClock(&clock);
    {
        PerfScope scope("late");
        Profiler::setEnabled(true);
        clock.advance(10);
    }
    Profiler::setEnabled(false);
    EXPECT_TRUE(Profiler::instance().drain().empty());
}

TEST_F(ProfilerTest, SampledScopeRecordsOneInEvery)
{
    ManualClock clock;
    Profiler::instance().setClock(&clock);
    Profiler::setEnabled(true);
    std::uint64_t counter = 0;
    for (int i = 0; i < 4; ++i) {
        PerfSampledScope scope("sampled", 2, counter);
        clock.advance(5);
    }
    Profiler::setEnabled(false);

    const std::vector<PerfEvent> events =
        Profiler::instance().drain();
    ASSERT_EQ(events.size(), 2u); // iterations 0 and 2
    EXPECT_EQ(events[0].startNs, 0u);
    EXPECT_EQ(events[1].startNs, 10u);
}

TEST_F(ProfilerTest, DrainMergesThreadsDeterministically)
{
    ManualClock clock;
    Profiler::instance().setClock(&clock);
    Profiler::setEnabled(true);

    // Sequential threads (join before start) make buffer
    // registration order -- and therefore tids -- deterministic.
    std::thread first([&] {
        Profiler::instance().record("a0", 100, 10);
        Profiler::instance().record("a1", 300, 10);
    });
    first.join();
    std::thread second([&] {
        Profiler::instance().record("b0", 200, 10);
        // Same start as a1: tid breaks the tie.
        Profiler::instance().record("b1", 300, 10);
    });
    second.join();
    Profiler::setEnabled(false);

    const std::vector<PerfEvent> events =
        Profiler::instance().drain();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, "a0");
    EXPECT_EQ(events[1].name, "b0");
    EXPECT_EQ(events[2].name, "a1");
    EXPECT_EQ(events[3].name, "b1");
    EXPECT_LT(events[2].tid, events[3].tid);

    // A second drain has nothing left.
    EXPECT_TRUE(Profiler::instance().drain().empty());
}

// -------------------------------------------------- Chrome trace

TEST(ChromeTrace, EmitsSchemaWithRebasedMicroseconds)
{
    const std::vector<PerfEvent> events = {
        {"cell 0", 2000, 500, 0, 0},
        {"fetch.sequential", 2100, 100, 0, 1},
        {"cell 1", 3000, 400, 1, 0},
    };
    std::ostringstream os;
    writeChromeTrace(os, events, "sweep");
    const std::string text = os.str();

    EXPECT_TRUE(balancedJson(text));
    EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);

    // Process metadata plus one named track per thread.
    EXPECT_NE(text.find("\"process_name\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"sweep\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"worker-0\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"worker-1\""), std::string::npos);

    // Complete events, timestamps rebased to the earliest (2000ns)
    // and converted to microseconds.
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ts\":0,\"dur\":0.5"), std::string::npos);
    EXPECT_NE(text.find("\"ts\":0.1,\"dur\":0.1"),
              std::string::npos);
    EXPECT_NE(text.find("\"ts\":1,\"dur\":0.4"), std::string::npos);
}

TEST(ChromeTrace, EmptyEventListIsStillValid)
{
    std::ostringstream os;
    writeChromeTrace(os, {});
    EXPECT_TRUE(balancedJson(os.str()));
    EXPECT_NE(os.str().find("\"traceEvents\":["), std::string::npos);
}

// ------------------------------------------------- bench harness

TEST(BenchStats, MedianOfOddEvenAndEmpty)
{
    EXPECT_DOUBLE_EQ(medianOf({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(medianOf({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(medianOf({}), 0.0);
}

TEST(BenchStats, MadIsRobustToOutliers)
{
    const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 900.0};
    const double median = medianOf(values);
    EXPECT_DOUBLE_EQ(median, 3.0);
    // Deviations {2, 1, 0, 1, 897} -> median 1: the outlier does
    // not blow up the spread estimate.
    EXPECT_DOUBLE_EQ(madOf(values, median), 1.0);
}

TEST(BenchGrid, IsPinnedTo24UnorderedCells)
{
    const std::vector<RunConfig> grid = benchGrid(1234);
    ASSERT_EQ(grid.size(), 24u);
    for (const RunConfig &config : grid) {
        EXPECT_EQ(config.layout, LayoutKind::Unordered);
        EXPECT_EQ(config.maxRetired, 1234u);
    }
    EXPECT_EQ(benchCellId(grid[0]),
              "eqntott/P14/sequential/unordered");
    EXPECT_EQ(benchCellId(grid.back()),
              "gcc/P112/trace-cache/unordered");
}

TEST(BenchRegressions, FlagsCellsSlowerThanThreshold)
{
    BenchReport report;
    report.cells.resize(2);
    report.cells[0].id = "a";
    report.cells[0].medianCyclesPerSec = 100.0;
    report.cells[1].id = "b";
    report.cells[1].medianCyclesPerSec = 100.0;

    // Baseline 25% faster on "a" (a 20% slowdown), matching on "b".
    const std::map<std::string, double> baseline = {{"a", 125.0},
                                                    {"b", 100.0}};

    const std::vector<BenchRegression> flagged =
        findBenchRegressions(report, baseline, 10.0);
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0].id, "a");
    EXPECT_NEAR(flagged[0].slowdownPct, 20.0, 1e-9);

    // A generous threshold lets the same report pass.
    EXPECT_TRUE(
        findBenchRegressions(report, baseline, 25.0).empty());
}

TEST(BenchRegressions, UnknownCellsAreIgnored)
{
    BenchReport report;
    report.cells.resize(1);
    report.cells[0].id = "new-cell";
    report.cells[0].medianCyclesPerSec = 1.0;
    const std::map<std::string, double> baseline = {
        {"old-cell", 1000.0}};
    EXPECT_TRUE(
        findBenchRegressions(report, baseline, 0.0).empty());
}

TEST(BenchJson, BaselineRoundTripsThroughTheFile)
{
    BenchReport report;
    report.iterations = 3;
    report.threads = 1;
    report.dynInsts = 1000;
    report.cells.resize(2);
    report.cells[0].config = benchGrid(1000)[0];
    report.cells[0].id = "a/b/c/d";
    report.cells[0].medianCyclesPerSec = 12345678.90123456;
    report.cells[0].samplesCyclesPerSec = {12345678.90123456};
    report.cells[1].config = benchGrid(1000)[1];
    report.cells[1].id = "e/f/g/h";
    report.cells[1].medianCyclesPerSec = 0.1;
    report.cells[1].samplesCyclesPerSec = {0.1};

    const std::string path =
        ::testing::TempDir() + "fetchsim_bench_roundtrip.json";
    {
        std::ofstream os(path, std::ios::binary);
        ASSERT_TRUE(os.is_open());
        writeBenchJson(os, report);
    }
    std::ifstream is(path);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    EXPECT_TRUE(balancedJson(buffer.str()));
    EXPECT_NE(buffer.str().find("\"schema\": \"fetchsim-bench-v1\""),
              std::string::npos);

    auto baseline = loadBenchBaseline(path);
    ASSERT_TRUE(baseline.ok());
    ASSERT_EQ(baseline.value().size(), 2u);
    EXPECT_DOUBLE_EQ(baseline.value().at("a/b/c/d"),
                     12345678.90123456);
    EXPECT_DOUBLE_EQ(baseline.value().at("e/f/g/h"), 0.1);
    std::remove(path.c_str());
}

TEST(BenchJson, MissingBaselineIsAnIoError)
{
    auto baseline =
        loadBenchBaseline("/nonexistent/BENCH_baseline.json");
    ASSERT_FALSE(baseline.ok());
    EXPECT_EQ(baseline.error().kind, ErrorKind::Io);
}

TEST(BenchRun, SmokeModeProducesAStructurallyCompleteReport)
{
    Session session;
    BenchOptions options;
    options.smoke = true;
    options.iterations = 7; // ignored in smoke mode
    std::vector<std::pair<int, int>> progress;
    options.progress = [&](int iteration, int total) {
        progress.emplace_back(iteration, total);
    };

    const BenchReport report = runBench(session, options);
    EXPECT_EQ(report.iterations, 1);
    EXPECT_EQ(report.dynInsts, kBenchSmokeInsts);
    ASSERT_EQ(report.cells.size(), 24u);
    for (const BenchCellStats &cell : report.cells) {
        EXPECT_EQ(cell.id, benchCellId(cell.config));
        ASSERT_EQ(cell.samplesCyclesPerSec.size(), 1u);
        EXPECT_GT(cell.medianCyclesPerSec, 0.0) << cell.id;
        EXPECT_GT(cell.medianWallNs, 0u) << cell.id;
    }
    ASSERT_EQ(progress.size(), 1u);
    EXPECT_EQ(progress[0], std::make_pair(1, 1));
    EXPECT_GT(report.totalWallNs, 0u);
    EXPECT_GT(report.peakRssBytes, 0u);
}

// ------------------------------------------- sweep host telemetry

TEST(SweepHostStats, CellsCarryHostCountersAndTicksFire)
{
    ExperimentPlan plan;
    plan.benchmarks({"eqntott", "compress"})
        .machine(MachineModel::P14)
        .schemes({SchemeKind::Sequential})
        .maxRetired(2000);

    std::vector<SweepTick> ticks;
    SweepOptions options;
    options.threads = 1;
    options.tick = [&](const SweepTick &tick) {
        ticks.push_back(tick);
    };

    Session session;
    SweepEngine engine(session, options);
    const SweepResult sweep = engine.run(plan);

    ASSERT_TRUE(sweep.allOk());
    ASSERT_EQ(sweep.host.size(), sweep.runs.size());
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
        EXPECT_GT(sweep.host[i].wallNs, 0u) << i;
        EXPECT_EQ(sweep.host[i].simCycles,
                  sweep.runs[i].counters.cycles)
            << i;
        EXPECT_EQ(sweep.host[i].retired,
                  sweep.runs[i].counters.retired)
            << i;
        EXPECT_GT(sweep.host[i].cyclesPerSec(), 0.0) << i;
    }
    EXPECT_GT(sweep.wallNs, 0u);
    EXPECT_GT(sweep.peakRssBytes, 0u);

    ASSERT_EQ(ticks.size(), sweep.runs.size());
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        EXPECT_EQ(ticks[i].done, i + 1);
        EXPECT_EQ(ticks[i].total, sweep.runs.size());
        EXPECT_EQ(ticks[i].retries, 0u);
    }
}

TEST(SweepHostStats, ZeroWallTimeYieldsZeroRates)
{
    HostStats host;
    host.simCycles = 1000;
    host.retired = 1000;
    EXPECT_DOUBLE_EQ(host.cyclesPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(host.instsPerSec(), 0.0);
}

// --------------------------------- round-trippable double output

TEST(NumberFormat, JsonNumberIsShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
    for (const double value :
         {1.0 / 3.0, 12345678.90123456, 1e-300, 0.875}) {
        const std::string text = jsonNumber(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value)
            << text;
    }
}

TEST(NumberFormat, CsvDoublesMatchTheJsonRendering)
{
    std::ostringstream os;
    {
        CsvWriter csv(os);
        csv.header({"a", "b"});
        csv.field(0.1).field(1.0 / 3.0).endRow();
    }
    EXPECT_EQ(os.str(), "a,b\n0.1," + jsonNumber(1.0 / 3.0) + "\n");
}

} // namespace
} // namespace fetchsim
