/**
 * @file
 * Tests for the program-inspection helpers (listing + dot export).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "program/dump.h"
#include "test_util.h"
#include "workload/benchmark_suite.h"

namespace fetchsim
{
namespace
{

TEST(Dump, ListingCoversEveryInstruction)
{
    Workload wl = test::hammockWorkload(2, 3, 0.5);
    std::ostringstream os;
    std::uint64_t listed = writeListing(wl.program, os);
    EXPECT_EQ(listed, wl.program.totalInstructions());
    const std::string text = os.str();
    EXPECT_NE(text.find("br"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
    EXPECT_NE(text.find("; block 0"), std::string::npos);
}

TEST(Dump, ListingRespectsMaxInsts)
{
    Workload wl = test::straightLineWorkload(20);
    ListingOptions options;
    options.maxInsts = 5;
    std::ostringstream os;
    EXPECT_EQ(writeListing(wl.program, os, options), 5u);
}

TEST(Dump, ListingShowsEncodings)
{
    Workload wl = test::straightLineWorkload(2);
    ListingOptions options;
    options.showEncoding = true;
    const std::string text = listingString(wl.program, options);
    // R-format IntAlu has opcode 0 in the top nibble: "0...".
    EXPECT_NE(text.find(":  0"), std::string::npos);
}

TEST(Dump, ListingMarksInvertedBranches)
{
    Workload wl = test::hammockWorkload(2, 3, 0.5);
    wl.program.block(0).invertedSense = true;
    const std::string text = listingString(wl.program);
    EXPECT_NE(text.find("[branch sense inverted]"),
              std::string::npos);
}

TEST(Dump, DotContainsEveryBlockAndEdgeKind)
{
    Workload wl = test::callWorkload(3);
    std::ostringstream os;
    writeDot(wl.program, os);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    for (std::size_t b = 0; b < wl.program.numBlocks(); ++b)
        EXPECT_NE(dot.find("b" + std::to_string(b)),
                  std::string::npos);
    EXPECT_NE(dot.find("call"), std::string::npos);
    EXPECT_NE(dot.find("subgraph cluster_fn1"), std::string::npos);
}

TEST(Dump, DotHandlesFullBenchmarks)
{
    // Smoke: dot export of a real benchmark neither crashes nor
    // produces an empty document.
    const Workload wl =
        generateWorkload(benchmarkByName("compress"));
    std::ostringstream os;
    writeDot(wl.program, os);
    EXPECT_GT(os.str().size(), 10000u);
}

} // anonymous namespace
} // namespace fetchsim
