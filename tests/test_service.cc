/**
 * @file
 * SweepService end-to-end tests: the in-process API (submit /
 * cancel / drain / jobResult) and real AF_UNIX socket clients
 * (serviceRequest) against the HTTP surface.  The load-bearing
 * claims under test:
 *
 *  - a job's result document is byte-identical to one-shot
 *    `sweep --json` output for the same plan, at 1 and 8 workers;
 *  - resubmitting an identical plan re-simulates zero cells;
 *  - cancellation skips unclaimed cells and reaches `cancelled`;
 *  - drain leaves a journal a restarted service resumes from;
 *  - oversize submissions are rejected (backpressure), not queued.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fetch/scheme_registry.h"
#include "sim/plan.h"
#include "sim/report.h"
#include "sim/service.h"
#include "sim/sweep.h"
#include "stats/json_parse.h"
#include "stats/log.h"

namespace fetchsim
{
namespace
{

/** Unique scratch path per tag (sockets, journals). */
std::string
scratchPath(const char *tag, const char *suffix)
{
    return ::testing::TempDir() + "fetchsim_svc_" + tag + "_" +
           std::to_string(::getpid()) + suffix;
}

/** A small 4-cell plan: 2 benchmarks x 1 machine x 2 schemes. */
std::vector<RunConfig>
smallConfigs()
{
    ExperimentPlan plan;
    plan.benchmarks({"eqntott", "compress"})
        .machine(MachineModel::P14)
        .schemes({SchemeKind::Sequential,
                  SchemeKind::CollapsingBuffer})
        .maxRetired(2000);
    return plan.expand();
}

/** An 8-cell plan for the byte-identity comparisons. */
std::vector<RunConfig>
mediumConfigs()
{
    ExperimentPlan plan;
    plan.benchmarks({"eqntott", "compress"})
        .machines({MachineModel::P14, MachineModel::P18})
        .schemes({SchemeKind::Sequential,
                  SchemeKind::CollapsingBuffer})
        .maxRetired(3000);
    return plan.expand();
}

/** A wide plan (dozens of cells) for cancel/drain races. */
std::vector<RunConfig>
wideConfigs()
{
    ExperimentPlan plan;
    plan.benchmarks(integerNames())
        .machines({MachineModel::P14, MachineModel::P18,
                   MachineModel::P112})
        .schemes({SchemeKind::Sequential,
                  SchemeKind::CollapsingBuffer})
        .maxRetired(2000);
    return plan.expand();
}

ServiceOptions
baseOptions(const char *tag, int threads)
{
    ServiceOptions options;
    options.socketPath = scratchPath(tag, ".sock");
    options.threads = threads;
    return options;
}

/** Submit, wait for a terminal state, and return the snapshot. */
JobSnapshot
runJob(SweepService &service, std::vector<RunConfig> configs,
       int priority = 0)
{
    auto job = service.submit(std::move(configs), priority);
    EXPECT_TRUE(job.ok()) << job.error().message;
    auto snap = service.jobSnapshot(job.value(), /*wait=*/true);
    EXPECT_TRUE(snap.ok()) << snap.error().message;
    return snap.value();
}

/** One-shot SweepEngine reference bytes for the same config list. */
std::string
oneShotJson(const std::vector<RunConfig> &configs)
{
    Session session;
    SweepOptions options;
    options.threads = 1;
    SweepEngine engine(session, options);
    SweepResult sweep = engine.run(configs);
    std::ostringstream os;
    writeRunsJson(os, sweep.runs);
    return os.str();
}

TEST(SweepService, ResubmittedPlanIsServedEntirelyFromCache)
{
    SweepService service(baseOptions("resubmit", 4));
    service.start();
    const std::vector<RunConfig> configs = smallConfigs();

    const JobSnapshot first = runJob(service, configs);
    EXPECT_EQ(first.state, JobState::Done);
    EXPECT_EQ(first.cells, configs.size());
    EXPECT_EQ(first.done, configs.size());
    EXPECT_EQ(first.simulated, configs.size());
    EXPECT_EQ(first.failed, 0u);

    const JobSnapshot second = runJob(service, configs);
    EXPECT_EQ(second.state, JobState::Done);
    EXPECT_EQ(second.simulated, 0u) << "identical plan re-simulated";
    EXPECT_EQ(second.cacheHits, configs.size());

    auto result1 = service.jobResult(first.id);
    auto result2 = service.jobResult(second.id);
    ASSERT_TRUE(result1.ok());
    ASSERT_TRUE(result2.ok());
    EXPECT_EQ(result1.value(), result2.value());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.jobsSubmitted, 2u);
    EXPECT_EQ(stats.jobsCompleted, 2u);
    EXPECT_EQ(stats.cellsSimulated, configs.size());
    EXPECT_EQ(stats.cellsCacheServed, configs.size());
    service.drain();
}

TEST(SweepService, ConcurrentSubmissionsSimulateEachCellOnce)
{
    SweepService service(baseOptions("concurrent", 4));
    service.start();
    const std::vector<RunConfig> configs = smallConfigs();

    // Four clients race to submit the identical plan.  Single-flight
    // admission must make the cells simulate exactly once in total;
    // every other (job, cell) resolves as a cache hit or wait.
    constexpr int kClients = 4;
    std::vector<std::thread> clients;
    std::vector<JobSnapshot> snaps(kClients);
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            snaps[i] = runJob(service, configs);
        });
    }
    for (std::thread &client : clients)
        client.join();

    std::size_t simulated = 0;
    for (const JobSnapshot &snap : snaps) {
        EXPECT_EQ(snap.state, JobState::Done);
        EXPECT_EQ(snap.done, configs.size());
        EXPECT_EQ(snap.failed, 0u);
        EXPECT_EQ(snap.simulated + snap.cacheHits, configs.size());
        simulated += snap.simulated;
    }
    EXPECT_EQ(simulated, configs.size())
        << "cells simulated more than once across concurrent jobs";

    // Every job serves the same bytes.
    auto first = service.jobResult(snaps[0].id);
    ASSERT_TRUE(first.ok());
    for (const JobSnapshot &snap : snaps) {
        auto result = service.jobResult(snap.id);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value(), first.value());
    }
    service.drain();
}

TEST(SweepService, SigtermSetsTheCooperativeStopFlag)
{
    // The CLI's serve loop polls serviceStopRequested() and calls
    // drain(); this covers the signal half of that wiring.
    installServiceSignalHandlers();
    clearServiceStop();
    EXPECT_FALSE(serviceStopRequested());
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(serviceStopRequested());
    clearServiceStop();
    EXPECT_FALSE(serviceStopRequested());
}

TEST(SweepService, ResultBytesMatchOneShotSweepAt1And8Workers)
{
    const std::vector<RunConfig> configs = mediumConfigs();
    const std::string reference = oneShotJson(configs);

    for (const int threads : {1, 8}) {
        SweepService service(baseOptions("ident", threads));
        service.start();
        const JobSnapshot snap = runJob(service, configs);
        EXPECT_EQ(snap.state, JobState::Done);
        auto result = service.jobResult(snap.id);
        ASSERT_TRUE(result.ok()) << result.error().message;
        EXPECT_EQ(result.value(), reference)
            << "served result diverged from one-shot sweep at "
            << threads << " worker(s)";
        service.drain();
    }
}

TEST(SweepService, CancelSkipsUnclaimedCellsMidSweep)
{
    SweepService service(baseOptions("cancel", 1));
    service.start();
    const std::vector<RunConfig> configs = wideConfigs();
    ASSERT_GT(configs.size(), 8u);

    auto job = service.submit(configs);
    ASSERT_TRUE(job.ok());
    EXPECT_TRUE(service.cancel(job.value()));
    // Cancelling twice (or a terminal job) reports false.
    auto snap = service.jobSnapshot(job.value(), /*wait=*/true);
    ASSERT_TRUE(snap.ok());
    EXPECT_FALSE(service.cancel(job.value()));

    EXPECT_EQ(snap.value().state, JobState::Cancelled);
    EXPECT_TRUE(snap.value().cancelRequested);
    EXPECT_GT(snap.value().skipped, 0u);
    EXPECT_EQ(snap.value().done, configs.size());
    EXPECT_LT(snap.value().simulated, configs.size());

    // A cancelled job still serves its (partial) result document.
    EXPECT_TRUE(service.jobResult(job.value()).ok());
    EXPECT_EQ(service.stats().jobsCancelled, 1u);
    service.drain();
}

TEST(SweepService, DrainLeavesAResumableJournal)
{
    const std::string journal = scratchPath("drainj", ".jsonl");
    std::remove(journal.c_str());
    const std::vector<RunConfig> configs = wideConfigs();
    std::size_t simulated_before_drain = 0;

    {
        ServiceOptions options = baseOptions("drain1", 1);
        options.resultCache.journalPath = journal;
        SweepService service(options);
        service.start();
        auto job = service.submit(configs);
        ASSERT_TRUE(job.ok());
        service.drain();

        auto snap = service.jobSnapshot(job.value());
        ASSERT_TRUE(snap.ok());
        EXPECT_EQ(snap.value().state, JobState::Drained);
        EXPECT_FALSE(snap.value().cancelRequested);
        EXPECT_GT(snap.value().skipped, 0u);
        EXPECT_EQ(snap.value().done, configs.size());
        simulated_before_drain = snap.value().simulated;

        // A draining service refuses new work.
        auto late = service.submit(configs);
        ASSERT_FALSE(late.ok());
        EXPECT_EQ(late.error().kind, ErrorKind::Io);
    }

    // The journal holds exactly the cells that finished.
    std::ifstream in(journal);
    std::size_t lines = 0;
    for (std::string line; std::getline(in, line);)
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, simulated_before_drain);

    // A service restarted on the same journal is warm: only the
    // drained-away cells simulate.
    ServiceOptions options = baseOptions("drain2", 1);
    options.resultCache.journalPath = journal;
    SweepService service(options);
    EXPECT_EQ(service.resultCache().stats().loaded,
              simulated_before_drain);
    service.start();
    const JobSnapshot snap = runJob(service, configs);
    EXPECT_EQ(snap.state, JobState::Done);
    EXPECT_EQ(snap.cacheHits, simulated_before_drain);
    EXPECT_EQ(snap.simulated,
              configs.size() - simulated_before_drain);
    service.drain();
    std::remove(journal.c_str());
}

/**
 * Send raw bytes to the service socket and return the full response.
 * The normal client (serviceRequest) always frames its requests
 * correctly, so the framing-abuse tests below speak to the socket
 * directly.
 */
std::string
rawRequest(const std::string &socket_path, const std::string &text)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, text.data(), text.size(), 0),
              static_cast<ssize_t>(text.size()));
    ::shutdown(fd, SHUT_WR);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

TEST(SweepService, OversizedBodyDeclarationIsRefusedWith413)
{
    SweepService service(baseOptions("body413", 1));
    service.start();

    // 8 MiB + 1 declared: refused from the declaration alone -- no
    // body bytes are sent, yet the response arrives, proving the
    // service did not wait to drain a body it already rejected.
    const std::string response = rawRequest(
        service.socketPath(),
        "POST /v1/jobs HTTP/1.1\r\n"
        "Content-Length: 8388609\r\n"
        "\r\n");
    EXPECT_NE(response.find("HTTP/1.1 413 Payload Too Large"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("exceeds"), std::string::npos);
    service.drain();
}

TEST(SweepService, PostWithoutContentLengthIsRefusedWith400)
{
    SweepService service(baseOptions("body400", 1));
    service.start();

    const std::string response =
        rawRequest(service.socketPath(),
                   "POST /v1/jobs HTTP/1.1\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("Content-Length"), std::string::npos);

    // GETs carry no body, so the length header stays optional there.
    const std::string ok = rawRequest(
        service.socketPath(), "GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;
    service.drain();
}

TEST(SweepService, OversizeSubmissionIsRejectedNotQueued)
{
    ServiceOptions options = baseOptions("backpressure", 1);
    options.maxQueuedCells = 4;
    SweepService service(options);
    service.start();

    auto job = service.submit(mediumConfigs()); // 8 cells > 4
    ASSERT_FALSE(job.ok());
    EXPECT_EQ(job.error().kind, ErrorKind::Io);
    EXPECT_EQ(service.stats().jobsRejected, 1u);

    // The same rejection over the socket is a 503.
    const ServiceResponse response = serviceRequest(
        service.socketPath(), "POST", "/v1/jobs",
        planRequestJson({"eqntott", "compress"}, {"P14", "P18"},
                        {"sequential", "collapsing"}, {}, 3000, 0));
    EXPECT_EQ(response.status, 503);
    EXPECT_NE(response.body.find("queue full"), std::string::npos);

    auto empty = service.submit({});
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error().kind, ErrorKind::Config);
    service.drain();
}

TEST(SweepService, SocketLifecycleSubmitWaitResultMatchesApi)
{
    SweepService service(baseOptions("socket", 2));
    service.start();
    const std::string &socket = service.socketPath();

    const ServiceResponse health =
        serviceRequest(socket, "GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"status\":\"ok\""),
              std::string::npos);
    EXPECT_NE(health.body.find("\"draining\":false"),
              std::string::npos);

    const ServiceResponse accepted = serviceRequest(
        socket, "POST", "/v1/jobs",
        planRequestJson({"eqntott", "compress"}, {"P14"},
                        {"sequential", "collapsing"}, {}, 2000, 0));
    ASSERT_EQ(accepted.status, 202) << accepted.body;
    EXPECT_NE(accepted.body.find("\"job\":1"), std::string::npos);

    // Long-poll until terminal, then fetch the result document.
    const ServiceResponse done =
        serviceRequest(socket, "GET", "/v1/jobs/1?wait=1");
    EXPECT_EQ(done.status, 200);
    EXPECT_NE(done.body.find("\"state\":\"done\""),
              std::string::npos);

    const ServiceResponse result =
        serviceRequest(socket, "GET", "/v1/jobs/1/result");
    EXPECT_EQ(result.status, 200);
    auto api_result = service.jobResult(1);
    ASSERT_TRUE(api_result.ok());
    EXPECT_EQ(result.body, api_result.value())
        << "socket result bytes diverged from the in-process API";

    // The job listing shows the one job.
    const ServiceResponse listing =
        serviceRequest(socket, "GET", "/v1/jobs");
    EXPECT_EQ(listing.status, 200);
    EXPECT_NE(listing.body.find("\"jobs\":["), std::string::npos);

    const ServiceResponse metrics =
        serviceRequest(socket, "GET", "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.contentType.find("text/plain"),
              std::string::npos);
    for (const char *name :
         {"service.jobs_submitted", "service.cells_simulated",
          "result_cache.hits", "replay.", "host."}) {
        EXPECT_NE(metrics.body.find(name), std::string::npos)
            << "missing metric namespace: " << name;
    }
    service.drain();
}

TEST(SweepService, SocketErrorsMapToProtocolStatuses)
{
    SweepService service(baseOptions("errors", 1));
    service.start();
    const std::string &socket = service.socketPath();

    struct Case
    {
        const char *method;
        const char *target;
        const char *body;
        int status;
    };
    const Case cases[] = {
        // Malformed JSON body.
        {"POST", "/v1/jobs", "{not json", 400},
        // Unknown request field.
        {"POST", "/v1/jobs", "{\"benchmarks\":[\"eqntott\"],\"x\":1}",
         400},
        // Missing required field.
        {"POST", "/v1/jobs", "{}", 400},
        // Unknown scheme name: a plan vocabulary (422) problem.
        {"POST", "/v1/jobs",
         "{\"benchmarks\":[\"eqntott\"],\"schemes\":[\"warp\"]}", 422},
        // Unknown benchmark name: plan validation (422).
        {"POST", "/v1/jobs", "{\"benchmarks\":[\"nonesuch\"]}", 422},
        // Unknown job / endpoint / id shapes.
        {"GET", "/v1/jobs/999", "", 404},
        {"GET", "/v1/jobs/999/result", "", 404},
        {"POST", "/v1/jobs/999/cancel", "", 404},
        {"GET", "/v1/jobs/abc", "", 404},
        {"GET", "/nope", "", 404},
        // Wrong method.
        {"POST", "/healthz", "", 405},
        {"DELETE", "/v1/jobs", "", 405},
        {"GET", "/v1/shutdown", "", 405},
    };
    for (const Case &c : cases) {
        const ServiceResponse response =
            serviceRequest(socket, c.method, c.target, c.body);
        EXPECT_EQ(response.status, c.status)
            << c.method << " " << c.target << " -> "
            << response.body;
        EXPECT_NE(response.body.find("\"error\""), std::string::npos);
    }

    // Result of a job that exists but is not finished: 409.
    auto job = service.submit(wideConfigs());
    ASSERT_TRUE(job.ok());
    const std::string target =
        "/v1/jobs/" + std::to_string(job.value()) + "/result";
    const ServiceResponse early =
        serviceRequest(socket, "GET", target);
    if (early.status != 200) { // may legitimately finish first
        EXPECT_EQ(early.status, 409);
    }
    service.cancel(job.value());

    // Cancelling a terminal job: 409.
    (void)service.jobSnapshot(job.value(), /*wait=*/true);
    const ServiceResponse recancel = serviceRequest(
        socket, "POST",
        "/v1/jobs/" + std::to_string(job.value()) + "/cancel");
    EXPECT_EQ(recancel.status, 409);
    service.drain();
}

TEST(SweepService, ShutdownEndpointRequestsDrainWithoutBlocking)
{
    SweepService service(baseOptions("shutdown", 1));
    service.start();
    EXPECT_FALSE(service.shutdownRequested());

    const ServiceResponse response =
        serviceRequest(service.socketPath(), "POST", "/v1/shutdown");
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("draining"), std::string::npos);
    // The endpoint only flags the owning loop; the service still
    // answers until that loop calls drain() (the serve loop's job).
    EXPECT_TRUE(service.shutdownRequested());
    EXPECT_FALSE(service.draining());
    service.drain();
    EXPECT_TRUE(service.draining());
}

// ------------------------------------------------------- observability

/** Capture logger output with timestamps off; restores on exit. */
class ServiceLogCapture
{
  public:
    explicit ServiceLogCapture(LogLevel level)
        : saved_(Logger::level())
    {
        Logger &logger = Logger::instance();
        logger.setLevel(level);
        logger.setTimestamps(false);
        logger.setCapture(&text_);
    }

    ~ServiceLogCapture()
    {
        Logger &logger = Logger::instance();
        logger.setCapture(nullptr);
        logger.setTimestamps(true);
        logger.setLevel(saved_);
    }

    std::vector<std::string> linesWith(const std::string &needle) const
    {
        std::vector<std::string> out;
        std::istringstream is(text_);
        std::string line;
        while (std::getline(is, line))
            if (line.find(needle) != std::string::npos)
                out.push_back(line);
        return out;
    }

  private:
    std::string text_;
    LogLevel saved_;
};

TEST(SweepService, JobStatusCarriesTraceIdAndLatencySummaries)
{
    SweepService service(baseOptions("tracesum", 2));
    service.start();
    const std::vector<RunConfig> configs = smallConfigs();
    const JobSnapshot snap = runJob(service, configs);
    EXPECT_EQ(snap.state, JobState::Done);

    // The trace id is 16 lowercase hex digits, stable per job.
    ASSERT_EQ(snap.traceId.size(), 16u);
    for (char c : snap.traceId)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << snap.traceId;

    // One queue-wait and one cell-latency sample per cell, with
    // ordered percentiles.
    EXPECT_EQ(snap.queueWait.count, configs.size());
    EXPECT_LE(snap.queueWait.p50Us, snap.queueWait.p95Us);
    EXPECT_LE(snap.queueWait.p95Us, snap.queueWait.maxUs);
    EXPECT_EQ(snap.cell.count, configs.size());
    EXPECT_LE(snap.cell.p50Us, snap.cell.p95Us);
    EXPECT_LE(snap.cell.p95Us, snap.cell.maxUs);

    // The HTTP status document carries both.
    const ServiceResponse status = serviceRequest(
        service.socketPath(), "GET",
        "/v1/jobs/" + std::to_string(snap.id));
    EXPECT_EQ(status.status, 200);
    EXPECT_NE(status.body.find("\"trace_id\":\"" + snap.traceId +
                               "\""),
              std::string::npos)
        << status.body;
    EXPECT_NE(status.body.find("\"latency\":{\"queue_wait_us\":"),
              std::string::npos);
    EXPECT_NE(status.body.find("\"cell_us\":"), std::string::npos);
    service.drain();
}

TEST(SweepService, TraceEndpointServesChromeTraceEvents)
{
    SweepService service(baseOptions("trace", 2));
    service.start();
    const std::vector<RunConfig> configs = smallConfigs();
    const JobSnapshot snap = runJob(service, configs);

    const std::string target =
        "/v1/jobs/" + std::to_string(snap.id) + "/trace";
    const ServiceResponse response =
        serviceRequest(service.socketPath(), "GET", target);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.contentType.find("application/json"),
              std::string::npos);

    // The socket serves the same bytes as the in-process API.
    auto api = service.jobTrace(snap.id);
    ASSERT_TRUE(api.ok());
    EXPECT_EQ(response.body, api.value());

    // The document is valid JSON in the Chrome/Perfetto trace-event
    // shape: {"traceEvents":[{"name":...,"ph":"X","ts":...,...}]}.
    auto parsed = parseJson(response.body);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const JsonValue *events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // Per cell: queue-wait + cell-claim + simulate/cache-serve, plus
    // result-render and metadata events.
    EXPECT_GE(events->elements().size(), configs.size() * 3);

    bool saw_queue_wait = false, saw_work = false, saw_render = false;
    for (const JsonValue &event : events->elements()) {
        ASSERT_TRUE(event.isObject());
        const JsonValue *name = event.find("name");
        const JsonValue *ph = event.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        const std::string &phase = ph->asString();
        ASSERT_TRUE(phase == "X" || phase == "M") << phase;
        if (phase == "X") {
            ASSERT_NE(event.find("ts"), nullptr);
            ASSERT_NE(event.find("dur"), nullptr);
            (void)event.find("ts")->asNumber();
            (void)event.find("dur")->asNumber();
        }
        const std::string &label = name->asString();
        saw_queue_wait |= label.rfind("queue-wait cell", 0) == 0;
        saw_work |= label.rfind("simulate cell", 0) == 0 ||
                    label.rfind("cache-serve cell", 0) == 0;
        saw_render |= label == "result-render";
    }
    EXPECT_TRUE(saw_queue_wait);
    EXPECT_TRUE(saw_work);
    EXPECT_TRUE(saw_render);

    // Unknown job: 404; wrong method: 405.
    EXPECT_EQ(serviceRequest(service.socketPath(), "GET",
                             "/v1/jobs/999/trace")
                  .status,
              404);
    EXPECT_EQ(serviceRequest(service.socketPath(), "POST", target)
                  .status,
              405);
    service.drain();
}

TEST(SweepService, PrometheusMetricsEndpoint)
{
    SweepService service(baseOptions("prom", 2));
    service.start();
    (void)runJob(service, smallConfigs());

    const ServiceResponse prom = serviceRequest(
        service.socketPath(), "GET", "/metrics?format=prometheus");
    ASSERT_EQ(prom.status, 200) << prom.body;
    EXPECT_NE(prom.contentType.find("version=0.0.4"),
              std::string::npos)
        << prom.contentType;

    // Every line is a comment or `name[{labels}] value`.
    std::istringstream lines(prom.body);
    std::string line;
    std::size_t samples = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#') {
            EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                        line.rfind("# TYPE ", 0) == 0)
                << line;
            continue;
        }
        ++samples;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string value = line.substr(space + 1);
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        EXPECT_TRUE(end != value.c_str() && *end == '\0') << line;
        EXPECT_EQ(line.find('.'), std::string::npos)
            << "dotted name leaked into exposition: " << line;
    }
    EXPECT_GT(samples, 10u);

    // Point-in-time values are typed as gauges, counters as counters,
    // latency distributions as cumulative histograms.
    EXPECT_NE(prom.body.find("# TYPE service_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(prom.body.find("# TYPE service_jobs_submitted counter"),
              std::string::npos);
    EXPECT_NE(prom.body.find(
                  "# TYPE service_request_latency_us histogram"),
              std::string::npos);
    EXPECT_NE(prom.body.find(
                  "service_request_latency_us_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(prom.body.find("service_queue_wait_us_sum"),
              std::string::npos);
    EXPECT_NE(prom.body.find("service_simulate_us_count"),
              std::string::npos);

    // The text rendering stays the default; unknown formats are 400.
    const ServiceResponse text = serviceRequest(
        service.socketPath(), "GET", "/metrics?format=text");
    EXPECT_EQ(text.status, 200);
    EXPECT_NE(text.body.find("service.jobs_submitted"),
              std::string::npos);
    const ServiceResponse bad = serviceRequest(
        service.socketPath(), "GET", "/metrics?format=xml");
    EXPECT_EQ(bad.status, 400);
    EXPECT_NE(bad.body.find("unknown metrics format"),
              std::string::npos);
    service.drain();
}

TEST(SweepService, AccessLogEmitsOneLinePerRequest)
{
    ServiceLogCapture capture(LogLevel::Info);
    SweepService service(baseOptions("accesslog", 1));
    service.start();

    const char *paths[] = {"/healthz", "/metrics", "/v1/jobs",
                           "/nope"};
    for (const char *path : paths)
        (void)serviceRequest(service.socketPath(), "GET", path);

    // Drain first: handler threads log http.access after answering,
    // and the capture buffer may only be read once they are gone.
    service.drain();

    const std::vector<std::string> access =
        capture.linesWith("http.access");
    ASSERT_EQ(access.size(), 4u);
    EXPECT_NE(access[0].find("method=\"GET\""), std::string::npos)
        << access[0];
    EXPECT_NE(access[0].find("path=\"/healthz\""), std::string::npos);
    EXPECT_NE(access[0].find("status=200"), std::string::npos);
    EXPECT_NE(access[0].find("latency_us="), std::string::npos);
    EXPECT_NE(access[0].find("request_id="), std::string::npos);
    EXPECT_NE(access[3].find("status=404"), std::string::npos)
        << access[3];
}

TEST(SweepService, ResultBytesUnchangedByLogVerbosity)
{
    const std::vector<RunConfig> configs = smallConfigs();
    const std::string reference = oneShotJson(configs);

    std::string with_debug, with_off;
    {
        ServiceLogCapture capture(LogLevel::Debug);
        SweepService service(baseOptions("logdbg", 2));
        service.start();
        const JobSnapshot snap = runJob(service, configs);
        with_debug = service.jobResult(snap.id).value();
        service.drain();
        // Debug level actually produced job/cell lines (read only
        // after drain joins every logging thread).
        EXPECT_FALSE(capture.linesWith("job.done").empty());
        EXPECT_FALSE(capture.linesWith("cell.claim").empty());
    }
    {
        ServiceLogCapture capture(LogLevel::Off);
        SweepService service(baseOptions("logoff", 2));
        service.start();
        const JobSnapshot snap = runJob(service, configs);
        with_off = service.jobResult(snap.id).value();
        service.drain();
        EXPECT_TRUE(capture.linesWith("job.done").empty());
    }
    EXPECT_EQ(with_debug, reference)
        << "debug logging perturbed the result document";
    EXPECT_EQ(with_off, reference)
        << "disabling logs perturbed the result document";
}

TEST(SweepService, ConcurrentSubmitScrapeAndLogAreRaceFree)
{
    // TSan target: three client roles hammer one service -- submits,
    // Prometheus scrapes and trace fetches, debug logging -- while
    // the worker pool simulates.  The assertions are deliberately
    // light; the value is the interleaving under the sanitizer.
    ServiceLogCapture capture(LogLevel::Debug);
    SweepService service(baseOptions("obsrace", 4));
    service.start();

    std::thread submitter([&] {
        for (int i = 0; i < 3; ++i)
            (void)runJob(service, smallConfigs(), i);
    });
    std::thread scraper([&] {
        for (int i = 0; i < 20; ++i) {
            const std::string prom = service.metricsPrometheus();
            EXPECT_NE(prom.find("service_queue_depth"),
                      std::string::npos);
            (void)service.jobTrace(1); // may be 404-early; both fine
            (void)service.metricsText();
        }
    });
    std::thread logger([&] {
        for (int i = 0; i < 200; ++i)
            LOG_DEBUG("obs.race", {{"i", i}});
    });
    submitter.join();
    scraper.join();
    logger.join();
    service.drain(); // joins workers before the capture is read

    EXPECT_EQ(capture.linesWith("obs.race").size(), 200u);
    EXPECT_EQ(service.stats().jobsCompleted, 3u);
}

TEST(SweepService, PlanRequestJsonRoundTripsThroughParser)
{
    auto parsed = parseJson(planRequestJson(
        {"eqntott"}, {"P14"}, {"sequential"}, {"unordered"}, 2000,
        3));
    ASSERT_TRUE(parsed.ok());
    auto configs = planConfigsFromJson(parsed.value());
    ASSERT_TRUE(configs.ok()) << configs.error().message;
    ASSERT_EQ(configs.value().size(), 1u);
    EXPECT_EQ(configs.value()[0].benchmark, "eqntott");
    EXPECT_EQ(configs.value()[0].machine, MachineModel::P14);
    EXPECT_EQ(configs.value()[0].scheme, SchemeKind::Sequential);
    EXPECT_EQ(configs.value()[0].maxRetired, 2000u);

    // Omitted axes select the server defaults: all machines x the
    // paper schemes x the unordered layout.
    auto defaults = parseJson(planRequestJson(
        {"eqntott"}, {}, {}, {}, 0, 0));
    ASSERT_TRUE(defaults.ok());
    auto expanded = planConfigsFromJson(defaults.value());
    ASSERT_TRUE(expanded.ok());
    const std::size_t paper_schemes =
        FetchSchemeRegistry::instance().paperSchemes().size();
    EXPECT_EQ(expanded.value().size(), 3u * paper_schemes);
}

} // anonymous namespace
} // namespace fetchsim
